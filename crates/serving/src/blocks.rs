//! PagedAttention-style KV block manager.
//!
//! vLLM/LMDeploy manage the KV cache as fixed-size blocks allocated on
//! demand, eliminating the preallocate-to-max waste of naive serving. The
//! manager tracks per-sequence block lists and exposes the fragmentation
//! statistics the paper's §2.2 discussion turns on.

use std::collections::BTreeMap;

/// Typed error for every fallible [`BlockManager`] operation. The serving
/// stack must degrade via `Result`, never abort, so malformed sequence ids
/// are errors rather than panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockError {
    /// The pool cannot cover an allocation.
    OutOfBlocks {
        /// Blocks requested.
        requested: usize,
        /// Blocks available.
        available: usize,
    },
    /// The sequence id is not registered.
    UnknownSeq {
        /// The offending id.
        seq: u64,
    },
    /// The sequence id is already registered.
    DuplicateSeq {
        /// The offending id.
        seq: u64,
    },
    /// `truncate_seq` was asked to *grow* a sequence.
    TruncateGrow {
        /// The sequence.
        seq: u64,
        /// Tokens currently stored.
        have: usize,
        /// Tokens requested.
        want: usize,
    },
}

impl std::fmt::Display for BlockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            BlockError::OutOfBlocks { requested, available } => write!(
                f,
                "out of KV blocks: requested {requested}, available {available}"
            ),
            BlockError::UnknownSeq { seq } => write!(f, "unknown sequence {seq}"),
            BlockError::DuplicateSeq { seq } => write!(f, "sequence {seq} already registered"),
            BlockError::TruncateGrow { seq, have, want } => write!(
                f,
                "cannot grow sequence {seq} via truncate ({have} -> {want} tokens)"
            ),
        }
    }
}

impl std::error::Error for BlockError {}

/// Fixed-size KV block allocator with per-sequence accounting.
#[derive(Debug, Clone)]
pub struct BlockManager {
    block_size: usize,
    total_blocks: usize,
    used_blocks: usize,
    /// seq id -> (blocks held, tokens stored).
    seqs: BTreeMap<u64, (usize, usize)>,
}

impl BlockManager {
    /// Creates a pool of `total_blocks` blocks of `block_size` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `block_size == 0`.
    pub fn new(total_blocks: usize, block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        BlockManager {
            block_size,
            total_blocks,
            used_blocks: 0,
            seqs: BTreeMap::new(),
        }
    }

    /// Tokens per block.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Total pool capacity in blocks.
    pub fn total_blocks(&self) -> usize {
        self.total_blocks
    }

    /// Blocks currently allocated.
    pub fn used_blocks(&self) -> usize {
        self.used_blocks
    }

    /// Blocks currently free.
    pub fn free_blocks(&self) -> usize {
        self.total_blocks - self.used_blocks
    }

    /// Tokens the free blocks could hold.
    pub fn free_tokens(&self) -> usize {
        self.free_blocks() * self.block_size
    }

    /// Fraction of the pool in use.
    pub fn utilization(&self) -> f64 {
        if self.total_blocks == 0 {
            0.0
        } else {
            self.used_blocks as f64 / self.total_blocks as f64
        }
    }

    /// Tokens wasted to internal fragmentation (allocated-but-unfilled slots
    /// in sequences' last blocks).
    pub fn internal_fragmentation_tokens(&self) -> usize {
        self.seqs
            .values()
            .map(|&(blocks, tokens)| blocks * self.block_size - tokens)
            .sum()
    }

    /// Number of resident sequences.
    pub fn seq_count(&self) -> usize {
        self.seqs.len()
    }

    fn blocks_for(&self, tokens: usize) -> usize {
        tokens.div_ceil(self.block_size)
    }

    /// Registers a sequence holding `tokens` tokens (its prefill
    /// allocation).
    ///
    /// # Errors
    ///
    /// [`BlockError::DuplicateSeq`] if `seq` is already registered;
    /// [`BlockError::OutOfBlocks`] (allocating nothing) if the pool cannot
    /// cover it.
    pub fn register_seq(&mut self, seq: u64, tokens: usize) -> Result<(), BlockError> {
        if self.seqs.contains_key(&seq) {
            return Err(BlockError::DuplicateSeq { seq });
        }
        let need = self.blocks_for(tokens.max(1));
        if need > self.free_blocks() {
            return Err(BlockError::OutOfBlocks {
                requested: need,
                available: self.free_blocks(),
            });
        }
        self.used_blocks += need;
        self.seqs.insert(seq, (need, tokens));
        Ok(())
    }

    /// Grows a sequence by one token, allocating a new block on a boundary.
    ///
    /// # Errors
    ///
    /// [`BlockError::UnknownSeq`] if `seq` is not registered;
    /// [`BlockError::OutOfBlocks`] if a new block is needed and none is
    /// free (the sequence is left unchanged).
    pub fn append_token(&mut self, seq: u64) -> Result<(), BlockError> {
        let free = self.free_blocks();
        let entry = self
            .seqs
            .get_mut(&seq)
            .ok_or(BlockError::UnknownSeq { seq })?;
        if entry.1 + 1 > entry.0 * self.block_size {
            if free == 0 {
                return Err(BlockError::OutOfBlocks {
                    requested: 1,
                    available: 0,
                });
            }
            entry.0 += 1;
            self.used_blocks += 1;
        }
        entry.1 += 1;
        Ok(())
    }

    /// Shrinks a sequence's token count (eviction policies), releasing
    /// whole blocks that become empty.
    ///
    /// # Errors
    ///
    /// [`BlockError::UnknownSeq`] if `seq` is not registered;
    /// [`BlockError::TruncateGrow`] if `tokens` exceeds its current count.
    pub fn truncate_seq(&mut self, seq: u64, tokens: usize) -> Result<(), BlockError> {
        let entry = self
            .seqs
            .get_mut(&seq)
            .ok_or(BlockError::UnknownSeq { seq })?;
        if tokens > entry.1 {
            return Err(BlockError::TruncateGrow {
                seq,
                have: entry.1,
                want: tokens,
            });
        }
        entry.1 = tokens;
        let need = tokens.max(1).div_ceil(self.block_size);
        if need < entry.0 {
            self.used_blocks -= entry.0 - need;
            entry.0 = need;
        }
        Ok(())
    }

    /// Releases all blocks of a sequence.
    ///
    /// # Errors
    ///
    /// [`BlockError::UnknownSeq`] if `seq` is not registered.
    pub fn free_seq(&mut self, seq: u64) -> Result<(), BlockError> {
        let (blocks, _) = self
            .seqs
            .remove(&seq)
            .ok_or(BlockError::UnknownSeq { seq })?;
        self.used_blocks -= blocks;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_rounds_up_to_blocks() {
        let mut m = BlockManager::new(10, 16);
        m.register_seq(1, 17).unwrap();
        assert_eq!(m.used_blocks(), 2);
        assert_eq!(m.internal_fragmentation_tokens(), 15);
    }

    #[test]
    fn append_allocates_on_boundary_only() {
        let mut m = BlockManager::new(10, 4);
        m.register_seq(1, 4).unwrap();
        assert_eq!(m.used_blocks(), 1);
        m.append_token(1).unwrap(); // Crosses into block 2.
        assert_eq!(m.used_blocks(), 2);
        m.append_token(1).unwrap(); // Fits in block 2.
        assert_eq!(m.used_blocks(), 2);
    }

    #[test]
    fn exhaustion_is_reported_not_panicked() {
        let mut m = BlockManager::new(2, 4);
        m.register_seq(1, 8).unwrap();
        let err = m.register_seq(2, 1).unwrap_err();
        assert_eq!(
            err,
            BlockError::OutOfBlocks {
                requested: 1,
                available: 0
            }
        );
        // Failed registration must not leak state.
        assert_eq!(m.seq_count(), 1);
    }

    #[test]
    fn free_returns_blocks() {
        let mut m = BlockManager::new(4, 4);
        m.register_seq(1, 16).unwrap();
        assert_eq!(m.free_blocks(), 0);
        m.free_seq(1).unwrap();
        assert_eq!(m.free_blocks(), 4);
        assert_eq!(m.seq_count(), 0);
        assert_eq!(m.free_seq(1), Err(BlockError::UnknownSeq { seq: 1 }));
    }

    #[test]
    fn truncate_releases_whole_blocks() {
        let mut m = BlockManager::new(10, 4);
        m.register_seq(1, 16).unwrap(); // 4 blocks.
        m.truncate_seq(1, 5).unwrap(); // Needs 2 blocks.
        assert_eq!(m.used_blocks(), 2);
        assert_eq!(m.internal_fragmentation_tokens(), 3);
        assert_eq!(
            m.truncate_seq(1, 6),
            Err(BlockError::TruncateGrow {
                seq: 1,
                have: 5,
                want: 6
            })
        );
    }

    #[test]
    fn utilization_and_conservation() {
        let mut m = BlockManager::new(8, 2);
        m.register_seq(1, 3).unwrap();
        m.register_seq(2, 2).unwrap();
        assert_eq!(m.used_blocks() + m.free_blocks(), m.total_blocks());
        assert!((m.utilization() - 3.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_registration_is_a_typed_error() {
        let mut m = BlockManager::new(4, 4);
        m.register_seq(1, 1).unwrap();
        assert_eq!(
            m.register_seq(1, 1),
            Err(BlockError::DuplicateSeq { seq: 1 })
        );
        // The rejected registration must not disturb accounting.
        assert_eq!(m.used_blocks(), 1);
        assert_eq!(m.seq_count(), 1);
    }
}
