//! PagedAttention-style KV block manager with prefix sharing and tiering.
//!
//! vLLM/LMDeploy manage the KV cache as fixed-size blocks allocated on
//! demand, eliminating the preallocate-to-max waste of naive serving. The
//! seed manager was pure `(blocks, tokens)` counting; this one gives every
//! block an identity so two serving-framework mechanisms the paper's §2.2
//! discussion leaves open become expressible:
//!
//! * **Content-hashed copy-on-write prefix sharing.** Full prefix blocks
//!   are *published* under a deterministic content hash; a later
//!   registration whose prefix hashes match re-references the resident
//!   blocks instead of allocating (refcount + 1). Published blocks are
//!   immutable — the first divergent append into a shared tail triggers a
//!   copy-on-write into a fresh private block. In this simulator a prefix
//!   block's content is fully determined by `(prefix group, block index,
//!   block size)`, so hashing that triple *is* content hashing (see
//!   [`prefix_hash_chain`]).
//! * **L1/L2 tiering.** Blocks live on the GPU (L1) or spilled to host
//!   memory (L2). [`demote_seq`](BlockManager::demote_seq) moves a
//!   sequence's private blocks to L2 (shared prefix blocks stay hot —
//!   other residents still read them); [`refill_seq`](BlockManager::refill_seq)
//!   brings them back. The engine prices both transfers over the PCIe link
//!   model so spills show up in TTFT/TBT.
//!
//! # Zero-token contract
//!
//! A sequence holds exactly `ceil(tokens / block_size)` blocks at all
//! times. Registering or truncating to zero tokens therefore holds zero
//! blocks (the seed pinned one block via `tokens.max(1)` with no stated
//! contract); the first append allocates. `internal_fragmentation_tokens`
//! counts allocated-but-unfilled slots over *physical* blocks, so a block
//! shared by many sequences contributes at most once and a zero-token
//! sequence contributes nothing.

use std::collections::BTreeMap;

/// Typed error for every fallible [`BlockManager`] operation. The serving
/// stack must degrade via `Result`, never abort, so malformed sequence ids
/// are errors rather than panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockError {
    /// The pool (L1 on allocation/refill, L2 on demotion) cannot cover an
    /// allocation.
    OutOfBlocks {
        /// Blocks requested.
        requested: usize,
        /// Blocks available.
        available: usize,
    },
    /// The sequence id is not registered.
    UnknownSeq {
        /// The offending id.
        seq: u64,
    },
    /// The sequence id is already registered.
    DuplicateSeq {
        /// The offending id.
        seq: u64,
    },
    /// `truncate_seq` was asked to *grow* a sequence.
    TruncateGrow {
        /// The sequence.
        seq: u64,
        /// Tokens currently stored.
        have: usize,
        /// Tokens requested.
        want: usize,
    },
    /// The sequence's tail block is demoted to L2; it must be refilled
    /// before it can grow.
    NotResident {
        /// The offending sequence.
        seq: u64,
    },
}

impl std::fmt::Display for BlockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            BlockError::OutOfBlocks { requested, available } => write!(
                f,
                "out of KV blocks: requested {requested}, available {available}"
            ),
            BlockError::UnknownSeq { seq } => write!(f, "unknown sequence {seq}"),
            BlockError::DuplicateSeq { seq } => write!(f, "sequence {seq} already registered"),
            BlockError::TruncateGrow { seq, have, want } => write!(
                f,
                "cannot grow sequence {seq} via truncate ({have} -> {want} tokens)"
            ),
            BlockError::NotResident { seq } => {
                write!(f, "sequence {seq} has demoted (L2) blocks and cannot grow")
            }
        }
    }
}

impl std::error::Error for BlockError {}

/// Where a block physically lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockTier {
    /// GPU-resident (HBM) — the only tier decode can read.
    L1,
    /// Host-spilled (over PCIe) — parked KV of demoted sequences.
    L2,
}

/// Read-only view of one physical block in a sequence's chain (test and
/// experiment introspection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockView {
    /// Physical block id.
    pub id: u32,
    /// Reference count (number of chains containing the block).
    pub refs: u32,
    /// Tokens stored in the block.
    pub filled: usize,
    /// Tier the block lives on.
    pub tier: BlockTier,
    /// Whether the block is published in the dedup index (shareable).
    pub published: bool,
}

/// Cumulative counters the prefix-sharing/tiering experiments report.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
// rkvc-allow(C001): return type of BlockManager::stats and ServerSim::block_stats; consumers bind stats without naming the type
pub struct BlockPoolStats {
    /// Blocks registrations asked for (shared hits + fresh allocations).
    pub logical_blocks_registered: u64,
    /// Blocks registrations actually allocated.
    pub physical_blocks_registered: u64,
    /// Registered blocks satisfied by the dedup index.
    pub shared_hits: u64,
    /// Copy-on-write block copies (first divergent append into a shared
    /// tail).
    pub cow_copies: u64,
    /// Blocks demoted L1 -> L2.
    pub demoted_blocks: u64,
    /// Tokens demoted L1 -> L2.
    pub demoted_tokens: u64,
    /// Blocks refilled L2 -> L1.
    pub refilled_blocks: u64,
    /// Tokens refilled L2 -> L1.
    pub refilled_tokens: u64,
    /// Peak concurrently registered sequences (includes spilled ones).
    pub peak_resident_seqs: usize,
    /// Peak L1 blocks in use.
    pub peak_l1_used_blocks: usize,
}

impl BlockPoolStats {
    /// Logical-over-physical registration ratio: how many blocks' worth of
    /// KV the pool *represents* per block it *stores*. 1.0 with no sharing;
    /// strictly above 1.0 once any prefix block is reused.
    pub fn dedup_ratio(&self) -> f64 {
        if self.physical_blocks_registered == 0 {
            1.0
        } else {
            self.logical_blocks_registered as f64 / self.physical_blocks_registered as f64
        }
    }
}

rkvc_tensor::json_struct!(BlockPoolStats {
    logical_blocks_registered,
    physical_blocks_registered,
    shared_hits,
    cow_copies,
    demoted_blocks,
    demoted_tokens,
    refilled_blocks,
    refilled_tokens,
    peak_resident_seqs,
    peak_l1_used_blocks,
});

/// What a shared registration reused from the dedup index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
// rkvc-allow(C001): return type of BlockManager::register_shared; consumers bind registrations without naming the type
pub struct SharedRegistration {
    /// Prefix blocks satisfied by resident published blocks.
    pub shared_blocks: usize,
    /// Tokens those blocks cover (shared blocks are always full).
    pub shared_tokens: usize,
}

/// Blocks/tokens moved by a [`demote_seq`](BlockManager::demote_seq) or
/// [`refill_seq`](BlockManager::refill_seq) call — what the engine prices
/// over the PCIe link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
// rkvc-allow(C001): return type of BlockManager::demote_seq/refill_seq; consumers bind moves without naming the type
pub struct TierMove {
    /// Blocks moved between tiers.
    pub blocks: usize,
    /// Tokens those blocks store.
    pub tokens: usize,
}

/// Deterministic content-hash chain for the first `blocks` full blocks of
/// a shared prefix. Block `i`'s content in this simulator is a pure
/// function of `(group, block_tokens, i)`, so an FNV-style mix of that
/// triple — chained so block `i`'s hash commits to all blocks before it —
/// is exactly a content hash: equal chains if and only if equal prefix
/// content.
pub fn prefix_hash_chain(group: u64, block_tokens: usize, blocks: usize) -> Vec<u64> {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET ^ group;
    h = h.wrapping_mul(FNV_PRIME);
    h ^= block_tokens as u64;
    h = h.wrapping_mul(FNV_PRIME);
    (0..blocks)
        .map(|i| {
            h ^= i as u64 + 1;
            h = h.wrapping_mul(FNV_PRIME);
            h
        })
        .collect()
}

/// Content-hash chain for a session's carried KV: the first
/// `prefix_len / block_tokens` blocks keep their [`prefix_hash_chain`]
/// hashes (the shared system prompt still deduplicates *across*
/// sessions), and blocks past the prefix continue the chain under a
/// session-scoped seed (conversation history is private to one session,
/// and in this simulator block `i`'s content is a pure function of
/// `(session, i)` — so the mix is a content hash).
///
/// The chain has the prefix property: for one session the chain over `n`
/// blocks extends the chain over `m < n` blocks, so turn `k + 1`'s
/// registration walks straight onto the blocks turn `k` published.
pub fn session_hash_chain(
    group: u64,
    prefix_len: usize,
    session: u64,
    block_tokens: usize,
    blocks: usize,
) -> Vec<u64> {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    /// Domain tag separating session chains from group prefix chains.
    const SESSION_TAG: u64 = 0x5e55_1011_c4a1_ed00;
    let prefix_blocks = (prefix_len / block_tokens).min(blocks);
    let mut chain = prefix_hash_chain(group, block_tokens, prefix_blocks);
    let mut h = FNV_OFFSET ^ session;
    h = h.wrapping_mul(FNV_PRIME);
    h ^= SESSION_TAG;
    h = h.wrapping_mul(FNV_PRIME);
    h ^= block_tokens as u64;
    h = h.wrapping_mul(FNV_PRIME);
    // Commit to the shared prefix: histories diverge if prompts did.
    for &p in &chain {
        h ^= p;
        h = h.wrapping_mul(FNV_PRIME);
    }
    for i in prefix_blocks..blocks {
        h ^= i as u64 + 1;
        h = h.wrapping_mul(FNV_PRIME);
        chain.push(h);
    }
    chain
}

#[derive(Debug, Clone)]
struct Block {
    refs: u32,
    filled: usize,
    tier: BlockTier,
    /// Content hash while published in the dedup index.
    hash: Option<u64>,
}

#[derive(Debug, Clone)]
struct SeqEntry {
    chain: Vec<u32>,
    tokens: usize,
}

/// Fixed-size KV block allocator with per-block identity: refcounted
/// content-hashed prefix sharing, copy-on-write tails, and L1/L2 tiering.
/// See the module docs for the sharing/tiering model and the zero-token
/// contract.
#[derive(Debug, Clone)]
pub struct BlockManager {
    block_size: usize,
    total_blocks: usize,
    l2_total_blocks: usize,
    /// Physical block table; freed slots are recycled via `free_ids`.
    blocks: Vec<Block>,
    /// LIFO free list of recycled `blocks` slots (deterministic reuse).
    free_ids: Vec<u32>,
    l1_used: usize,
    l2_used: usize,
    /// Content hash -> published (L1-resident, immutable) block.
    dedup: BTreeMap<u64, u32>,
    seqs: BTreeMap<u64, SeqEntry>,
    stats: BlockPoolStats,
}

impl BlockManager {
    /// Creates a pool of `total_blocks` GPU-resident blocks of
    /// `block_size` tokens and no spill tier.
    ///
    /// # Panics
    ///
    /// Panics if `block_size == 0`.
    pub fn new(total_blocks: usize, block_size: usize) -> Self {
        Self::with_tier(total_blocks, block_size, 0)
    }

    /// Creates a pool with `total_blocks` L1 (GPU) blocks plus an
    /// `l2_blocks`-block host spill tier.
    ///
    /// # Panics
    ///
    /// Panics if `block_size == 0`.
    pub fn with_tier(total_blocks: usize, block_size: usize, l2_blocks: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        BlockManager {
            block_size,
            total_blocks,
            l2_total_blocks: l2_blocks,
            blocks: Vec::new(),
            free_ids: Vec::new(),
            l1_used: 0,
            l2_used: 0,
            dedup: BTreeMap::new(),
            seqs: BTreeMap::new(),
            stats: BlockPoolStats::default(),
        }
    }

    /// Tokens per block.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Total L1 pool capacity in blocks.
    pub fn total_blocks(&self) -> usize {
        self.total_blocks
    }

    /// L1 blocks currently allocated.
    pub fn used_blocks(&self) -> usize {
        self.l1_used
    }

    /// L1 blocks currently free.
    pub fn free_blocks(&self) -> usize {
        self.total_blocks - self.l1_used
    }

    /// Tokens the free L1 blocks could hold.
    pub fn free_tokens(&self) -> usize {
        self.free_blocks() * self.block_size
    }

    /// Spill-tier capacity in blocks (0 without a tier).
    pub fn l2_total_blocks(&self) -> usize {
        self.l2_total_blocks
    }

    /// Spill-tier blocks currently in use.
    pub fn l2_used_blocks(&self) -> usize {
        self.l2_used
    }

    /// Fraction of the L1 pool in use.
    pub fn utilization(&self) -> f64 {
        if self.total_blocks == 0 {
            0.0
        } else {
            self.l1_used as f64 / self.total_blocks as f64
        }
    }

    /// Tokens wasted to internal fragmentation: allocated-but-unfilled
    /// slots summed over *physical* blocks (either tier), so a block
    /// shared by many chains is counted once and a zero-token sequence
    /// (which holds no blocks) contributes nothing.
    pub fn internal_fragmentation_tokens(&self) -> usize {
        self.blocks
            .iter()
            .filter(|b| b.refs > 0)
            .map(|b| self.block_size - b.filled)
            .sum()
    }

    /// Number of registered sequences (running or spilled).
    pub fn seq_count(&self) -> usize {
        self.seqs.len()
    }

    /// Sum of chain lengths over registered sequences — the *logical*
    /// block demand. Exceeds `used + l2_used` exactly when blocks are
    /// shared.
    pub fn logical_blocks(&self) -> usize {
        self.seqs.values().map(|e| e.chain.len()).sum()
    }

    /// Cumulative sharing/tiering counters.
    pub fn stats(&self) -> &BlockPoolStats {
        &self.stats
    }

    /// Whether `seq` is registered with every block L1-resident (a
    /// spilled sequence reports `false` until refilled; an unknown id
    /// reports `false`).
    pub fn is_fully_resident(&self, seq: u64) -> bool {
        match self.seqs.get(&seq) {
            Some(e) => e
                .chain
                .iter()
                .all(|&id| self.blocks[id as usize].tier == BlockTier::L1),
            None => false,
        }
    }

    /// The sequence's chain as block views (introspection for tests and
    /// experiments), or `None` if unregistered.
    pub fn seq_blocks(&self, seq: u64) -> Option<Vec<BlockView>> {
        let e = self.seqs.get(&seq)?;
        Some(
            e.chain
                .iter()
                .map(|&id| {
                    let b = &self.blocks[id as usize];
                    BlockView {
                        id,
                        refs: b.refs,
                        filled: b.filled,
                        tier: b.tier,
                        published: b.hash.is_some(),
                    }
                })
                .collect(),
        )
    }

    fn blocks_for(&self, tokens: usize) -> usize {
        tokens.div_ceil(self.block_size)
    }

    /// Allocates one L1 block (caller has verified capacity), publishing
    /// it in the dedup index when `hash` is given.
    fn alloc_block(&mut self, filled: usize, hash: Option<u64>) -> u32 {
        let block = Block {
            refs: 1,
            filled,
            tier: BlockTier::L1,
            hash,
        };
        let id = match self.free_ids.pop() {
            Some(id) => {
                self.blocks[id as usize] = block;
                id
            }
            None => {
                self.blocks.push(block);
                (self.blocks.len() - 1) as u32
            }
        };
        self.l1_used += 1;
        if self.l1_used > self.stats.peak_l1_used_blocks {
            self.stats.peak_l1_used_blocks = self.l1_used;
        }
        if let Some(h) = hash {
            self.dedup.insert(h, id);
        }
        id
    }

    /// Drops one reference; the last reference frees the block (and
    /// unpublishes it).
    fn release_ref(&mut self, id: u32) {
        let b = &mut self.blocks[id as usize];
        b.refs -= 1;
        if b.refs > 0 {
            return;
        }
        let hash = b.hash.take();
        match b.tier {
            BlockTier::L1 => self.l1_used -= 1,
            BlockTier::L2 => self.l2_used -= 1,
        }
        if let Some(h) = hash {
            self.dedup.remove(&h);
        }
        self.free_ids.push(id);
    }

    fn note_registered(&mut self, logical: usize, fresh: usize, hits: usize) {
        self.stats.logical_blocks_registered += logical as u64;
        self.stats.physical_blocks_registered += fresh as u64;
        self.stats.shared_hits += hits as u64;
        if self.seqs.len() > self.stats.peak_resident_seqs {
            self.stats.peak_resident_seqs = self.seqs.len();
        }
    }

    /// Registers a sequence holding `tokens` tokens (its prefill
    /// allocation) with no prefix sharing. Zero tokens hold zero blocks
    /// (see the module-level contract).
    ///
    /// # Errors
    ///
    /// [`BlockError::DuplicateSeq`] if `seq` is already registered;
    /// [`BlockError::OutOfBlocks`] (allocating nothing) if the pool cannot
    /// cover it.
    pub fn register_seq(&mut self, seq: u64, tokens: usize) -> Result<(), BlockError> {
        self.register_seq_shared(seq, tokens, &[]).map(|_| ())
    }

    /// Registers a sequence whose first blocks may be shared: walks
    /// `prefix_hashes` (one content hash per *full* prefix block, in
    /// order) against the dedup index, re-referencing resident published
    /// blocks from block 0 until the first miss, then allocates the rest.
    /// Newly allocated full prefix blocks are published under their hash
    /// so later arrivals can share them.
    ///
    /// Returns what was reused; the engine skips prefill over
    /// `shared_tokens` of KV it did not have to compute.
    ///
    /// # Errors
    ///
    /// [`BlockError::DuplicateSeq`] if `seq` is already registered;
    /// [`BlockError::OutOfBlocks`] (allocating and re-referencing
    /// nothing) if the *unshared* remainder cannot be covered.
    pub fn register_seq_shared(
        &mut self,
        seq: u64,
        tokens: usize,
        prefix_hashes: &[u64],
    ) -> Result<SharedRegistration, BlockError> {
        if self.seqs.contains_key(&seq) {
            return Err(BlockError::DuplicateSeq { seq });
        }
        let need = self.blocks_for(tokens);
        // Only blocks the sequence fills completely are shareable — a
        // partial tail is private by construction.
        let shareable = prefix_hashes.len().min(tokens / self.block_size);
        let mut hits = 0;
        while hits < shareable && self.dedup.contains_key(&prefix_hashes[hits]) {
            hits += 1;
        }
        let fresh = need - hits;
        if fresh > self.free_blocks() {
            return Err(BlockError::OutOfBlocks {
                requested: fresh,
                available: self.free_blocks(),
            });
        }
        let mut chain = Vec::with_capacity(need);
        for h in prefix_hashes.iter().take(hits) {
            if let Some(&id) = self.dedup.get(h) {
                self.blocks[id as usize].refs += 1;
                chain.push(id);
            }
        }
        for i in hits..need {
            let filled = if i + 1 < need || tokens % self.block_size == 0 {
                self.block_size
            } else {
                tokens % self.block_size
            };
            // Publish the full prefix blocks this sequence brings in.
            let hash = if i < shareable {
                Some(prefix_hashes[i])
            } else {
                None
            };
            chain.push(self.alloc_block(filled, hash));
        }
        self.seqs.insert(seq, SeqEntry { chain, tokens });
        self.note_registered(need, fresh, hits);
        Ok(SharedRegistration {
            shared_blocks: hits,
            shared_tokens: hits * self.block_size,
        })
    }

    /// Grows a sequence by one token. On a block boundary this allocates a
    /// fresh private block; inside a shared tail it copies-on-write first
    /// (published blocks are immutable); a sole-owner published tail is
    /// unpublished and mutated in place.
    ///
    /// # Errors
    ///
    /// [`BlockError::UnknownSeq`] if `seq` is not registered;
    /// [`BlockError::OutOfBlocks`] if a block (new or CoW copy) is needed
    /// and none is free (the sequence is left unchanged);
    /// [`BlockError::NotResident`] if the tail is demoted to L2.
    pub fn append_token(&mut self, seq: u64) -> Result<(), BlockError> {
        let (chain_len, tokens, tail) = match self.seqs.get(&seq) {
            Some(e) => (e.chain.len(), e.tokens, e.chain.last().copied()),
            None => return Err(BlockError::UnknownSeq { seq }),
        };
        // Private blocks always follow the shared prefix, and demotion
        // moves every private block — so a demoted tail is exactly the
        // "some block is on L2" condition, at either branch below.
        if let Some(t) = tail {
            if self.blocks[t as usize].tier == BlockTier::L2 {
                return Err(BlockError::NotResident { seq });
            }
        }
        // Boundary (including the empty chain): open a fresh private block.
        if tokens == chain_len * self.block_size {
            if self.free_blocks() == 0 {
                return Err(BlockError::OutOfBlocks {
                    requested: 1,
                    available: 0,
                });
            }
            let id = self.alloc_block(1, None);
            if let Some(e) = self.seqs.get_mut(&seq) {
                e.chain.push(id);
                e.tokens += 1;
            }
            return Ok(());
        }
        let Some(tail) = tail else {
            // Unreachable: tokens > 0 implies a non-empty chain.
            return Err(BlockError::UnknownSeq { seq });
        };
        let in_tail = tokens - (chain_len - 1) * self.block_size;
        let refs = self.blocks[tail as usize].refs;
        if refs > 1 {
            // Divergent append into a shared block: copy-on-write. The
            // copy takes this sequence's `in_tail` tokens plus the new one;
            // the shared original is untouched.
            if self.free_blocks() == 0 {
                return Err(BlockError::OutOfBlocks {
                    requested: 1,
                    available: 0,
                });
            }
            let id = self.alloc_block(in_tail + 1, None);
            self.release_ref(tail);
            if let Some(e) = self.seqs.get_mut(&seq) {
                if let Some(last) = e.chain.last_mut() {
                    *last = id;
                }
                e.tokens += 1;
            }
            self.stats.cow_copies += 1;
            return Ok(());
        }
        // Sole owner. A still-published block must leave the dedup index
        // before it mutates — published content is immutable by contract.
        let hash = self.blocks[tail as usize].hash.take();
        if let Some(h) = hash {
            self.dedup.remove(&h);
        }
        self.blocks[tail as usize].filled = in_tail + 1;
        if let Some(e) = self.seqs.get_mut(&seq) {
            e.tokens += 1;
        }
        Ok(())
    }

    /// Shrinks a sequence's token count (eviction policies), releasing the
    /// references of blocks past the new length; blocks free when their
    /// last reference drops. Truncating to zero releases the whole chain.
    ///
    /// # Errors
    ///
    /// [`BlockError::UnknownSeq`] if `seq` is not registered;
    /// [`BlockError::TruncateGrow`] if `tokens` exceeds its current count.
    pub fn truncate_seq(&mut self, seq: u64, tokens: usize) -> Result<(), BlockError> {
        let have = match self.seqs.get(&seq) {
            Some(e) => e.tokens,
            None => return Err(BlockError::UnknownSeq { seq }),
        };
        if tokens > have {
            return Err(BlockError::TruncateGrow {
                seq,
                have,
                want: tokens,
            });
        }
        let keep = self.blocks_for(tokens);
        let released = match self.seqs.get_mut(&seq) {
            Some(e) => {
                e.tokens = tokens;
                e.chain.split_off(keep)
            }
            None => Vec::new(),
        };
        for id in released {
            self.release_ref(id);
        }
        if keep > 0 {
            let tail = self.seqs.get(&seq).and_then(|e| e.chain.last().copied());
            if let Some(tail) = tail {
                let b = &mut self.blocks[tail as usize];
                // Only a private tail's fill tracks this sequence; shared
                // or published tails keep their full (immutable) contents.
                if b.refs == 1 && b.hash.is_none() {
                    b.filled = tokens - (keep - 1) * self.block_size;
                }
            }
        }
        Ok(())
    }

    /// Releases all of a sequence's references; blocks free when their
    /// last reference drops (a shared prefix outlives any one sequence).
    ///
    /// # Errors
    ///
    /// [`BlockError::UnknownSeq`] if `seq` is not registered.
    pub fn free_seq(&mut self, seq: u64) -> Result<(), BlockError> {
        let entry = self
            .seqs
            .remove(&seq)
            .ok_or(BlockError::UnknownSeq { seq })?;
        for id in entry.chain {
            self.release_ref(id);
        }
        Ok(())
    }

    /// Publishes a registered sequence's leading *full* L1 blocks under
    /// `hashes` (one content hash per block, from block 0), so a later
    /// [`register_seq_shared`](Self::register_seq_shared) with the same
    /// chain re-references them instead of re-allocating — the mechanism
    /// that lets a completed conversation turn's KV stay resident for the
    /// follow-up turn. Blocks already published under the same hash (a
    /// shared system prefix) are left as they are; publication stops at
    /// the first partial, spilled, or hash-conflicting block (later
    /// blocks would be unreachable anyway — the dedup walk stops at the
    /// first miss). The sequence stays registered and owns one reference
    /// to every block until [`free_seq`](Self::free_seq).
    ///
    /// Returns the number of blocks now published under `hashes`.
    ///
    /// # Errors
    ///
    /// [`BlockError::UnknownSeq`] if `seq` is not registered.
    pub fn publish_seq(&mut self, seq: u64, hashes: &[u64]) -> Result<usize, BlockError> {
        let chain: Vec<u32> = match self.seqs.get(&seq) {
            Some(e) => e.chain.clone(),
            None => return Err(BlockError::UnknownSeq { seq }),
        };
        let mut published = 0usize;
        for (&id, &h) in chain.iter().zip(hashes) {
            let b = &self.blocks[id as usize];
            if b.tier != BlockTier::L1 || b.filled != self.block_size {
                break;
            }
            match b.hash {
                Some(existing) if existing == h => {
                    published += 1;
                }
                Some(_) => break,
                None => {
                    if self.dedup.contains_key(&h) {
                        // Another block already owns this hash (identical
                        // content published elsewhere); chains that need
                        // it will share that copy instead.
                        break;
                    }
                    self.blocks[id as usize].hash = Some(h);
                    self.dedup.insert(h, id);
                    published += 1;
                }
            }
        }
        Ok(published)
    }

    /// Demotes a sequence's *private* (sole-reference) L1 blocks to the
    /// spill tier, all or nothing. Shared blocks stay in L1 — other
    /// residents still read them. A sole-owner published block is
    /// unpublished first (its content leaves the GPU, so it can no longer
    /// seed sharing). The sequence stays registered; refill it before it
    /// grows again.
    ///
    /// # Errors
    ///
    /// [`BlockError::UnknownSeq`] if `seq` is not registered;
    /// [`BlockError::OutOfBlocks`] (moving nothing) if the spill tier
    /// cannot hold every candidate block.
    pub fn demote_seq(&mut self, seq: u64) -> Result<TierMove, BlockError> {
        let chain: Vec<u32> = match self.seqs.get(&seq) {
            Some(e) => e.chain.clone(),
            None => return Err(BlockError::UnknownSeq { seq }),
        };
        let candidates: Vec<u32> = chain
            .into_iter()
            .filter(|&id| {
                let b = &self.blocks[id as usize];
                b.tier == BlockTier::L1 && b.refs == 1
            })
            .collect();
        let l2_free = self.l2_total_blocks - self.l2_used;
        if candidates.len() > l2_free {
            return Err(BlockError::OutOfBlocks {
                requested: candidates.len(),
                available: l2_free,
            });
        }
        let mut mv = TierMove::default();
        for id in candidates {
            let hash = self.blocks[id as usize].hash.take();
            if let Some(h) = hash {
                self.dedup.remove(&h);
            }
            let b = &mut self.blocks[id as usize];
            b.tier = BlockTier::L2;
            self.l1_used -= 1;
            self.l2_used += 1;
            mv.blocks += 1;
            mv.tokens += b.filled;
        }
        self.stats.demoted_blocks += mv.blocks as u64;
        self.stats.demoted_tokens += mv.tokens as u64;
        Ok(mv)
    }

    /// Promotes a spilled sequence's L2 blocks back to L1, all or nothing
    /// — after which it is fully resident and can grow again.
    ///
    /// # Errors
    ///
    /// [`BlockError::UnknownSeq`] if `seq` is not registered;
    /// [`BlockError::OutOfBlocks`] (moving nothing) if L1 lacks room for
    /// every spilled block.
    pub fn refill_seq(&mut self, seq: u64) -> Result<TierMove, BlockError> {
        let chain: Vec<u32> = match self.seqs.get(&seq) {
            Some(e) => e.chain.clone(),
            None => return Err(BlockError::UnknownSeq { seq }),
        };
        let spilled: Vec<u32> = chain
            .into_iter()
            .filter(|&id| self.blocks[id as usize].tier == BlockTier::L2)
            .collect();
        if spilled.len() > self.free_blocks() {
            return Err(BlockError::OutOfBlocks {
                requested: spilled.len(),
                available: self.free_blocks(),
            });
        }
        let mut mv = TierMove::default();
        for id in spilled {
            let b = &mut self.blocks[id as usize];
            b.tier = BlockTier::L1;
            self.l2_used -= 1;
            self.l1_used += 1;
            mv.blocks += 1;
            mv.tokens += b.filled;
        }
        if self.l1_used > self.stats.peak_l1_used_blocks {
            self.stats.peak_l1_used_blocks = self.l1_used;
        }
        self.stats.refilled_blocks += mv.blocks as u64;
        self.stats.refilled_tokens += mv.tokens as u64;
        Ok(mv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_rounds_up_to_blocks() {
        let mut m = BlockManager::new(10, 16);
        m.register_seq(1, 17).unwrap();
        assert_eq!(m.used_blocks(), 2);
        assert_eq!(m.internal_fragmentation_tokens(), 15);
    }

    #[test]
    fn append_allocates_on_boundary_only() {
        let mut m = BlockManager::new(10, 4);
        m.register_seq(1, 4).unwrap();
        assert_eq!(m.used_blocks(), 1);
        m.append_token(1).unwrap(); // Crosses into block 2.
        assert_eq!(m.used_blocks(), 2);
        m.append_token(1).unwrap(); // Fits in block 2.
        assert_eq!(m.used_blocks(), 2);
    }

    #[test]
    fn exhaustion_is_reported_not_panicked() {
        let mut m = BlockManager::new(2, 4);
        m.register_seq(1, 8).unwrap();
        let err = m.register_seq(2, 1).unwrap_err();
        assert_eq!(
            err,
            BlockError::OutOfBlocks {
                requested: 1,
                available: 0
            }
        );
        // Failed registration must not leak state.
        assert_eq!(m.seq_count(), 1);
    }

    #[test]
    fn free_returns_blocks() {
        let mut m = BlockManager::new(4, 4);
        m.register_seq(1, 16).unwrap();
        assert_eq!(m.free_blocks(), 0);
        m.free_seq(1).unwrap();
        assert_eq!(m.free_blocks(), 4);
        assert_eq!(m.seq_count(), 0);
        assert_eq!(m.free_seq(1), Err(BlockError::UnknownSeq { seq: 1 }));
    }

    #[test]
    fn truncate_releases_whole_blocks() {
        let mut m = BlockManager::new(10, 4);
        m.register_seq(1, 16).unwrap(); // 4 blocks.
        m.truncate_seq(1, 5).unwrap(); // Needs 2 blocks.
        assert_eq!(m.used_blocks(), 2);
        assert_eq!(m.internal_fragmentation_tokens(), 3);
        assert_eq!(
            m.truncate_seq(1, 6),
            Err(BlockError::TruncateGrow {
                seq: 1,
                have: 5,
                want: 6
            })
        );
    }

    #[test]
    fn utilization_and_conservation() {
        let mut m = BlockManager::new(8, 2);
        m.register_seq(1, 3).unwrap();
        m.register_seq(2, 2).unwrap();
        assert_eq!(m.used_blocks() + m.free_blocks(), m.total_blocks());
        assert!((m.utilization() - 3.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_registration_is_a_typed_error() {
        let mut m = BlockManager::new(4, 4);
        m.register_seq(1, 1).unwrap();
        assert_eq!(
            m.register_seq(1, 1),
            Err(BlockError::DuplicateSeq { seq: 1 })
        );
        // The rejected registration must not disturb accounting.
        assert_eq!(m.used_blocks(), 1);
        assert_eq!(m.seq_count(), 1);
    }

    #[test]
    fn zero_token_sequences_hold_zero_blocks() {
        // The documented contract: blocks held == ceil(tokens / bs), so a
        // zero-token sequence pins nothing (the seed pinned one block).
        let mut m = BlockManager::new(4, 4);
        m.register_seq(1, 0).unwrap();
        assert_eq!(m.used_blocks(), 0);
        assert_eq!(m.internal_fragmentation_tokens(), 0);
        // First append opens the first block.
        m.append_token(1).unwrap();
        assert_eq!(m.used_blocks(), 1);
        assert_eq!(m.internal_fragmentation_tokens(), 3);
        // Truncating back to zero releases the whole chain.
        m.truncate_seq(1, 0).unwrap();
        assert_eq!(m.used_blocks(), 0);
        assert_eq!(m.internal_fragmentation_tokens(), 0);
        assert_eq!(m.seq_count(), 1);
        m.free_seq(1).unwrap();
        assert_eq!(m.seq_count(), 0);
    }

    #[test]
    fn shared_prefix_allocates_once() {
        let mut m = BlockManager::new(16, 4);
        let hashes = prefix_hash_chain(7, 4, 2); // 8 shared prefix tokens.
        let a = m.register_seq_shared(1, 10, &hashes).unwrap();
        assert_eq!(a.shared_blocks, 0, "first arrival allocates everything");
        assert_eq!(m.used_blocks(), 3);
        let b = m.register_seq_shared(2, 10, &hashes).unwrap();
        assert_eq!(b, SharedRegistration { shared_blocks: 2, shared_tokens: 8 });
        // Second sequence added only its private tail block.
        assert_eq!(m.used_blocks(), 4);
        assert_eq!(m.logical_blocks(), 6);
        assert!(m.stats().dedup_ratio() > 1.0);
        // Shared blocks are refcounted: freeing one sequence keeps them.
        m.free_seq(1).unwrap();
        assert_eq!(m.used_blocks(), 3);
        m.free_seq(2).unwrap();
        assert_eq!(m.used_blocks(), 0);
        assert_eq!(m.internal_fragmentation_tokens(), 0);
    }

    #[test]
    fn mismatched_prefix_does_not_share() {
        let mut m = BlockManager::new(16, 4);
        m.register_seq_shared(1, 8, &prefix_hash_chain(1, 4, 2)).unwrap();
        let r = m.register_seq_shared(2, 8, &prefix_hash_chain(2, 4, 2)).unwrap();
        assert_eq!(r.shared_blocks, 0);
        assert_eq!(m.used_blocks(), 4);
    }

    #[test]
    fn partial_tail_is_never_published() {
        let mut m = BlockManager::new(16, 4);
        // 6 tokens = 1 full block + a 2-token tail; hashes offered for 2
        // blocks, but only the full one may publish.
        let hashes = prefix_hash_chain(3, 4, 2);
        m.register_seq_shared(1, 6, &hashes).unwrap();
        let views = m.seq_blocks(1).unwrap();
        assert!(views[0].published && views[0].filled == 4);
        assert!(!views[1].published && views[1].filled == 2);
        // A follow-up can share only the full block.
        let r = m.register_seq_shared(2, 6, &hashes).unwrap();
        assert_eq!(r.shared_blocks, 1);
    }

    #[test]
    fn cow_append_never_mutates_the_shared_block() {
        let mut m = BlockManager::new(16, 4);
        let hashes = prefix_hash_chain(9, 4, 2);
        m.register_seq_shared(1, 8, &hashes).unwrap();
        m.register_seq_shared(2, 8, &hashes).unwrap();
        // Truncate seq 2 into the shared region, then diverge.
        m.truncate_seq(2, 5).unwrap();
        // Content identity of seq 1's chain: ids, fills, tiers, publication
        // (refs legitimately drop when seq 2 releases its reference).
        let content = |m: &BlockManager| -> Vec<(u32, usize, BlockTier, bool)> {
            m.seq_blocks(1)
                .unwrap()
                .iter()
                .map(|v| (v.id, v.filled, v.tier, v.published))
                .collect()
        };
        let shared_before = content(&m);
        m.append_token(2).unwrap(); // In-tail append -> CoW.
        let shared_after = content(&m);
        assert_eq!(shared_before, shared_after, "CoW must not touch seq 1's chain");
        let diverged = m.seq_blocks(2).unwrap();
        assert_eq!(diverged[1].refs, 1);
        assert!(!diverged[1].published);
        // Seq 2 had 1 token in the tail; the copy holds it plus the new one.
        assert_eq!(diverged[1].filled, 2);
        assert_ne!(diverged[1].id, shared_after[1].0);
        assert_eq!(m.stats().cow_copies, 1);
    }

    #[test]
    fn sole_owner_published_tail_unpublishes_on_append() {
        let mut m = BlockManager::new(16, 4);
        let hashes = prefix_hash_chain(5, 4, 1);
        m.register_seq_shared(1, 4, &hashes).unwrap();
        m.truncate_seq(1, 3).unwrap();
        // refs == 1, still published: the append must unpublish in place,
        // not copy.
        m.append_token(1).unwrap();
        let views = m.seq_blocks(1).unwrap();
        assert_eq!(views.len(), 1);
        assert!(!views[0].published);
        assert_eq!(views[0].filled, 4);
        assert_eq!(m.stats().cow_copies, 0);
        // The unpublished content can no longer seed sharing.
        let r = m.register_seq_shared(2, 4, &hashes).unwrap();
        assert_eq!(r.shared_blocks, 0);
    }

    #[test]
    fn demote_and_refill_round_trip() {
        let mut m = BlockManager::with_tier(8, 4, 8);
        let hashes = prefix_hash_chain(11, 4, 1);
        m.register_seq_shared(1, 8, &hashes).unwrap();
        m.register_seq_shared(2, 8, &hashes).unwrap();
        assert_eq!(m.used_blocks(), 3);
        let mv = m.demote_seq(2).unwrap();
        // Only the private tail moves; the shared prefix stays hot.
        assert_eq!(mv, TierMove { blocks: 1, tokens: 4 });
        assert_eq!(m.used_blocks(), 2);
        assert_eq!(m.l2_used_blocks(), 1);
        assert!(!m.is_fully_resident(2));
        assert!(m.is_fully_resident(1));
        assert_eq!(m.append_token(2), Err(BlockError::NotResident { seq: 2 }));
        let back = m.refill_seq(2).unwrap();
        assert_eq!(back, TierMove { blocks: 1, tokens: 4 });
        assert!(m.is_fully_resident(2));
        m.append_token(2).unwrap();
        // Freeing a spilled chain returns L2 blocks too.
        m.demote_seq(2).unwrap();
        m.free_seq(2).unwrap();
        assert_eq!(m.l2_used_blocks(), 0);
    }

    #[test]
    fn demote_without_l2_room_is_all_or_nothing() {
        let mut m = BlockManager::with_tier(8, 4, 1);
        m.register_seq(1, 8).unwrap(); // 2 private blocks, 1 L2 slot.
        let err = m.demote_seq(1).unwrap_err();
        assert_eq!(
            err,
            BlockError::OutOfBlocks {
                requested: 2,
                available: 1
            }
        );
        assert_eq!(m.used_blocks(), 2);
        assert_eq!(m.l2_used_blocks(), 0);
        assert!(m.is_fully_resident(1));
    }

    #[test]
    fn sole_owner_published_block_unpublishes_on_demote() {
        let mut m = BlockManager::with_tier(8, 4, 8);
        let hashes = prefix_hash_chain(13, 4, 1);
        m.register_seq_shared(1, 4, &hashes).unwrap();
        m.demote_seq(1).unwrap();
        // Its content left the GPU, so a new arrival cannot share it.
        let r = m.register_seq_shared(2, 4, &hashes).unwrap();
        assert_eq!(r.shared_blocks, 0);
    }

    #[test]
    fn prefix_hash_chain_is_deterministic_and_group_scoped() {
        let a = prefix_hash_chain(1, 16, 4);
        assert_eq!(a, prefix_hash_chain(1, 16, 4));
        assert_eq!(a.len(), 4);
        let b = prefix_hash_chain(2, 16, 4);
        assert!(a.iter().zip(&b).all(|(x, y)| x != y));
        // Same group, different block size -> different content.
        let c = prefix_hash_chain(1, 32, 4);
        assert!(a.iter().zip(&c).all(|(x, y)| x != y));
        // A longer chain extends the shorter one (prefix property).
        let long = prefix_hash_chain(1, 16, 6);
        assert_eq!(&long[..4], &a[..]);
    }

    #[test]
    fn session_hash_chain_extends_the_group_prefix() {
        // 2 prefix blocks (32 tokens at bs 16) + 2 session-private blocks.
        let chain = session_hash_chain(7, 32, 100, 16, 4);
        assert_eq!(&chain[..2], &prefix_hash_chain(7, 16, 2)[..]);
        // Session-private blocks are session-scoped...
        let other = session_hash_chain(7, 32, 101, 16, 4);
        assert_eq!(&other[..2], &chain[..2]);
        assert!(chain[2..].iter().zip(&other[2..]).all(|(a, b)| a != b));
        // ...and the chain has the prefix property across turns.
        let longer = session_hash_chain(7, 32, 100, 16, 6);
        assert_eq!(&longer[..4], &chain[..]);
    }

    #[test]
    fn publish_then_shared_register_reuses_carried_blocks() {
        let mut m = BlockManager::new(16, 4);
        // Turn 0: 10 tokens (2 full blocks + partial tail), no sharing.
        m.register_seq(1, 10).unwrap();
        let hashes = session_hash_chain(0, 0, 42, 4, 2);
        assert_eq!(m.publish_seq(1, &hashes), Ok(2));
        // Turn 1 carries those 10 tokens: the walk hits both full blocks.
        let next = session_hash_chain(0, 0, 42, 4, 3);
        let r = m.register_seq_shared(2, 14, &next[..2]).unwrap();
        assert_eq!(r.shared_blocks, 2);
        assert_eq!(r.shared_tokens, 8);
        // Retiring the parked turn keeps the shared blocks alive.
        m.free_seq(1).unwrap();
        assert!(m.seq_blocks(2).unwrap()[..2].iter().all(|b| b.published));
        // Unknown sequence is a typed error, publishing nothing.
        assert_eq!(
            m.publish_seq(9, &hashes),
            Err(BlockError::UnknownSeq { seq: 9 })
        );
    }

    #[test]
    fn publish_stops_at_partial_and_conflicting_blocks() {
        let mut m = BlockManager::new(16, 4);
        m.register_seq(1, 6).unwrap(); // 1 full + 1 partial block.
        let hashes = session_hash_chain(0, 0, 5, 4, 2);
        // Only the full block publishes; the partial tail is private.
        assert_eq!(m.publish_seq(1, &hashes), Ok(1));
        // Re-publishing under the same chain is idempotent.
        assert_eq!(m.publish_seq(1, &hashes), Ok(1));
        // A different sequence claiming the same hash stops at the
        // conflict instead of stealing the dedup slot.
        m.register_seq(2, 4).unwrap();
        assert_eq!(m.publish_seq(2, &hashes), Ok(0));
    }
}
