//! PagedAttention-style KV block manager.
//!
//! vLLM/LMDeploy manage the KV cache as fixed-size blocks allocated on
//! demand, eliminating the preallocate-to-max waste of naive serving. The
//! manager tracks per-sequence block lists and exposes the fragmentation
//! statistics the paper's §2.2 discussion turns on.

use std::collections::HashMap;

/// Error returned when the block pool is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfBlocks {
    /// Blocks requested.
    pub requested: usize,
    /// Blocks available.
    pub available: usize,
}

impl std::fmt::Display for OutOfBlocks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out of KV blocks: requested {}, available {}",
            self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfBlocks {}

/// Fixed-size KV block allocator with per-sequence accounting.
#[derive(Debug, Clone)]
pub struct BlockManager {
    block_size: usize,
    total_blocks: usize,
    used_blocks: usize,
    /// seq id -> (blocks held, tokens stored).
    seqs: HashMap<u64, (usize, usize)>,
}

impl BlockManager {
    /// Creates a pool of `total_blocks` blocks of `block_size` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `block_size == 0`.
    pub fn new(total_blocks: usize, block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        BlockManager {
            block_size,
            total_blocks,
            used_blocks: 0,
            seqs: HashMap::new(),
        }
    }

    /// Tokens per block.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Total pool capacity in blocks.
    pub fn total_blocks(&self) -> usize {
        self.total_blocks
    }

    /// Blocks currently allocated.
    pub fn used_blocks(&self) -> usize {
        self.used_blocks
    }

    /// Blocks currently free.
    pub fn free_blocks(&self) -> usize {
        self.total_blocks - self.used_blocks
    }

    /// Tokens the free blocks could hold.
    pub fn free_tokens(&self) -> usize {
        self.free_blocks() * self.block_size
    }

    /// Fraction of the pool in use.
    pub fn utilization(&self) -> f64 {
        if self.total_blocks == 0 {
            0.0
        } else {
            self.used_blocks as f64 / self.total_blocks as f64
        }
    }

    /// Tokens wasted to internal fragmentation (allocated-but-unfilled slots
    /// in sequences' last blocks).
    pub fn internal_fragmentation_tokens(&self) -> usize {
        self.seqs
            .values()
            .map(|&(blocks, tokens)| blocks * self.block_size - tokens)
            .sum()
    }

    /// Number of resident sequences.
    pub fn seq_count(&self) -> usize {
        self.seqs.len()
    }

    fn blocks_for(&self, tokens: usize) -> usize {
        tokens.div_ceil(self.block_size)
    }

    /// Registers a sequence holding `tokens` tokens (its prefill
    /// allocation).
    ///
    /// # Errors
    ///
    /// Returns [`OutOfBlocks`] (allocating nothing) if the pool cannot
    /// cover it.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is already registered.
    pub fn register_seq(&mut self, seq: u64, tokens: usize) -> Result<(), OutOfBlocks> {
        assert!(!self.seqs.contains_key(&seq), "sequence {seq} already registered");
        let need = self.blocks_for(tokens.max(1));
        if need > self.free_blocks() {
            return Err(OutOfBlocks {
                requested: need,
                available: self.free_blocks(),
            });
        }
        self.used_blocks += need;
        self.seqs.insert(seq, (need, tokens));
        Ok(())
    }

    /// Grows a sequence by one token, allocating a new block on a boundary.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfBlocks`] if a new block is needed and none is free.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not registered.
    pub fn append_token(&mut self, seq: u64) -> Result<(), OutOfBlocks> {
        let free = self.free_blocks();
        let entry = self.seqs.get_mut(&seq).expect("unknown sequence");
        if entry.1 + 1 > entry.0 * self.block_size {
            if free == 0 {
                return Err(OutOfBlocks {
                    requested: 1,
                    available: 0,
                });
            }
            entry.0 += 1;
            self.used_blocks += 1;
        }
        entry.1 += 1;
        Ok(())
    }

    /// Shrinks a sequence's token count (eviction policies), releasing
    /// whole blocks that become empty.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not registered or `tokens` exceeds its current
    /// count.
    pub fn truncate_seq(&mut self, seq: u64, tokens: usize) {
        let entry = self.seqs.get_mut(&seq).expect("unknown sequence");
        assert!(tokens <= entry.1, "cannot grow via truncate");
        entry.1 = tokens;
        let need = tokens.max(1).div_ceil(self.block_size);
        if need < entry.0 {
            self.used_blocks -= entry.0 - need;
            entry.0 = need;
        }
    }

    /// Releases all blocks of a sequence.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not registered.
    pub fn free_seq(&mut self, seq: u64) {
        let (blocks, _) = self.seqs.remove(&seq).expect("unknown sequence");
        self.used_blocks -= blocks;
    }
}

rkvc_tensor::json_struct!(OutOfBlocks { requested, available });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_rounds_up_to_blocks() {
        let mut m = BlockManager::new(10, 16);
        m.register_seq(1, 17).unwrap();
        assert_eq!(m.used_blocks(), 2);
        assert_eq!(m.internal_fragmentation_tokens(), 15);
    }

    #[test]
    fn append_allocates_on_boundary_only() {
        let mut m = BlockManager::new(10, 4);
        m.register_seq(1, 4).unwrap();
        assert_eq!(m.used_blocks(), 1);
        m.append_token(1).unwrap(); // Crosses into block 2.
        assert_eq!(m.used_blocks(), 2);
        m.append_token(1).unwrap(); // Fits in block 2.
        assert_eq!(m.used_blocks(), 2);
    }

    #[test]
    fn exhaustion_is_reported_not_panicked() {
        let mut m = BlockManager::new(2, 4);
        m.register_seq(1, 8).unwrap();
        let err = m.register_seq(2, 1).unwrap_err();
        assert_eq!(err.available, 0);
        assert_eq!(err.requested, 1);
        // Failed registration must not leak state.
        assert_eq!(m.seq_count(), 1);
    }

    #[test]
    fn free_returns_blocks() {
        let mut m = BlockManager::new(4, 4);
        m.register_seq(1, 16).unwrap();
        assert_eq!(m.free_blocks(), 0);
        m.free_seq(1);
        assert_eq!(m.free_blocks(), 4);
        assert_eq!(m.seq_count(), 0);
    }

    #[test]
    fn truncate_releases_whole_blocks() {
        let mut m = BlockManager::new(10, 4);
        m.register_seq(1, 16).unwrap(); // 4 blocks.
        m.truncate_seq(1, 5); // Needs 2 blocks.
        assert_eq!(m.used_blocks(), 2);
        assert_eq!(m.internal_fragmentation_tokens(), 3);
    }

    #[test]
    fn utilization_and_conservation() {
        let mut m = BlockManager::new(8, 2);
        m.register_seq(1, 3).unwrap();
        m.register_seq(2, 2).unwrap();
        assert_eq!(m.used_blocks() + m.free_blocks(), m.total_blocks());
        assert!((m.utilization() - 3.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_registration_panics() {
        let mut m = BlockManager::new(4, 4);
        m.register_seq(1, 1).unwrap();
        let _ = m.register_seq(1, 1);
    }
}
