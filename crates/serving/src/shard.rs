//! Request sharding for the fleet layer.
//!
//! A [`Sharder`] decides, at dispatch time, which of the fleet's *active*
//! replicas absorbs a request — replacing the cluster router's
//! route-every-request scan over global server state with an O(1) (or
//! O(log n)) function of a stable *shard key*. Because the decision
//! depends only on the key and the active-replica count, sharded dispatch
//! is trivially deterministic and per-replica simulation can proceed in
//! parallel between telemetry epochs (see [`fleet`](crate::fleet)).
//!
//! Two policies:
//!
//! * [`RoundRobinSharder`] — cycles over the active set. Perfectly
//!   balanced (±1 request) but key-oblivious: requests sharing a system
//!   prompt scatter across replicas, so every replica stores its own copy
//!   of the prefix and the pool's dedup win evaporates.
//! * [`JumpHashSharder`] — Lamping–Veach jump consistent hashing over the
//!   session/prefix-group key ([`shard_key`]). Same-key requests land on
//!   the same replica (prefix dedup survives sharding), and growing the
//!   active set from `n` to `n + 1` remaps only ~`1/(n + 1)` of the keys —
//!   the property that makes autoscaling cheap for a stateful cache.

use crate::SimRequest;

/// SplitMix64 finalizer — the bijective avalanche step. Jump hashing needs
/// well-mixed keys; raw session ids and small prefix-group integers are
/// anything but.
#[inline]
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Lamping–Veach jump consistent hash: maps `key` to a bucket in
/// `[0, buckets)`. For any `key`, going from `n` to `n + 1` buckets either
/// keeps the bucket or moves it to the *new* bucket `n` — so exactly
/// `~1/(n + 1)` of the key space remaps on growth, and shrinking by
/// removing the highest bucket remaps only the keys that lived there.
///
/// Returns 0 when `buckets == 0` (callers guarantee a non-empty active
/// set; this keeps the function total without panicking).
pub fn jump_hash(key: u64, buckets: usize) -> usize {
    if buckets <= 1 {
        return 0;
    }
    let mut k = key;
    let mut b: i64 = -1;
    let mut j: i64 = 0;
    while j < buckets as i64 {
        b = j;
        k = k.wrapping_mul(2862933555777941757).wrapping_add(1);
        // (b + 1) * (2^31 / (floor(k / 2^33) + 1)) — the paper's float
        // step; exact for all operand magnitudes that can occur here.
        j = ((b + 1) as f64 * ((1u64 << 31) as f64 / ((k >> 33).wrapping_add(1) as f64))) as i64;
    }
    b as usize
}

/// The stable dispatch key of a request: the unit of locality sharding
/// must preserve. Conversations pin to their session (follow-up turns must
/// find their parked KV), single-shot prefix traffic pins to its system
/// prompt (so the prefix stays deduplicated on one replica), and
/// everything else spreads by request id.
pub fn shard_key(req: &SimRequest) -> u64 {
    match (req.session, req.prefix_len) {
        (Some(s), _) => mix64(s.session ^ 0xA11C_E5E5_5E55_10B5),
        (None, p) if p > 0 => mix64(req.prefix_group ^ 0x9F1C_0DE0_F1EE_75A1),
        _ => mix64(req.id),
    }
}

/// A dispatch policy over the fleet's active replica list. `active_len` is
/// the current number of active replicas (≥ 1); the return value is an
/// index into that list. Implementations must be deterministic functions
/// of their own state and the arguments — never of wall clock or thread
/// schedule.
pub trait Sharder: std::fmt::Debug + Send {
    /// Policy name for tables and benches.
    fn label(&self) -> &'static str;

    /// Picks the active-list slot for `key`. Must return a value in
    /// `[0, active_len)` for any `active_len >= 1`.
    fn shard(&mut self, key: u64, active_len: usize) -> usize;
}

/// Key-oblivious round-robin: request `k` goes to slot `k mod n`. Balanced
/// to ±1 by construction, but destroys key locality.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobinSharder {
    next: u64,
}

impl Sharder for RoundRobinSharder {
    fn label(&self) -> &'static str {
        "round_robin"
    }

    fn shard(&mut self, _key: u64, active_len: usize) -> usize {
        if active_len == 0 {
            return 0;
        }
        let slot = (self.next % active_len as u64) as usize;
        self.next = self.next.wrapping_add(1);
        slot
    }
}

/// Stateless jump-consistent-hash sharding over [`shard_key`]s.
#[derive(Debug, Clone, Copy, Default)]
pub struct JumpHashSharder;

impl Sharder for JumpHashSharder {
    fn label(&self) -> &'static str {
        "consistent_hash"
    }

    fn shard(&mut self, key: u64, active_len: usize) -> usize {
        jump_hash(key, active_len)
    }
}

/// Which sharding policy a fleet runs — the config-level knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardPolicy {
    /// Key-oblivious round-robin over the active set.
    RoundRobin,
    /// Jump consistent hashing over session/prefix-group keys.
    #[default]
    ConsistentHash,
}

impl ShardPolicy {
    /// Both policies in ablation order.
    pub fn all() -> [ShardPolicy; 2] {
        [ShardPolicy::RoundRobin, ShardPolicy::ConsistentHash]
    }

    /// Table/bench label.
    pub fn label(self) -> &'static str {
        match self {
            ShardPolicy::RoundRobin => "round_robin",
            ShardPolicy::ConsistentHash => "consistent_hash",
        }
    }

    /// Builds the policy's sharder state.
    pub fn sharder(self) -> Box<dyn Sharder> {
        match self {
            ShardPolicy::RoundRobin => Box::new(RoundRobinSharder::default()),
            ShardPolicy::ConsistentHash => Box::new(JumpHashSharder),
        }
    }
}

rkvc_tensor::json_unit_enum!(ShardPolicy { RoundRobin, ConsistentHash });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jump_hash_is_total_and_in_range() {
        assert_eq!(jump_hash(42, 0), 0);
        assert_eq!(jump_hash(42, 1), 0);
        for key in 0..1000u64 {
            let b = jump_hash(mix64(key), 7);
            assert!(b < 7);
        }
    }

    #[test]
    fn shard_key_prefers_session_then_group() {
        let single = SimRequest::new(1, 0.0, 128, 16);
        let grouped = SimRequest::new(2, 0.0, 128, 16).with_shared_prefix(9, 64);
        let grouped2 = SimRequest::new(3, 0.0, 256, 16).with_shared_prefix(9, 64);
        assert_eq!(shard_key(&grouped), shard_key(&grouped2));
        assert_ne!(shard_key(&single), shard_key(&grouped));
        let turn = SimRequest::new(4, 0.0, 128, 16)
            .with_shared_prefix(9, 64)
            .with_session(crate::SessionRef {
                session: 5,
                turn: 0,
                carried_tokens: 0,
                last_turn: false,
            });
        let turn2 = SimRequest::new(7, 9.0, 512, 16).with_session(crate::SessionRef {
            session: 5,
            turn: 1,
            carried_tokens: 128,
            last_turn: true,
        });
        // Same session, different group annotations: the session wins so
        // follow-up turns find their parked KV.
        assert_eq!(shard_key(&turn), shard_key(&turn2));
    }

    #[test]
    fn policies_round_trip_labels_and_build_sharders() {
        for p in ShardPolicy::all() {
            let mut s = p.sharder();
            assert_eq!(s.label(), p.label());
            assert!(s.shard(123, 4) < 4);
        }
        assert_eq!(ShardPolicy::default(), ShardPolicy::ConsistentHash);
    }
}
