//! Latency reductions: percentiles and CDFs, plus per-request serving
//! metric summaries (TTFT / TBT / queue delay / E2E) for experiment JSON —
//! and, for mixed-class traffic, per-[`SloClass`] breakdowns with
//! attainment and goodput ([`SloMetrics`]).

use crate::{CompletedRequest, SloClass};


/// Above this sample count a serialized summary switches from the full
/// `sorted` array to a fixed quantile digest (`count` + `mean` +
/// [`QUANTILE_GRID`] pairs) — a million-request fleet run must not write a
/// million raw floats per metric. Every committed result file holds
/// summaries well under this limit, so their bytes are untouched.
pub const FULL_SAMPLE_LIMIT: usize = 1_000;

/// The digest's percentile grid: the points experiments actually report
/// (`row` uses p50/p95/p99) plus enough of the body and tail to replot a
/// coarse CDF.
pub const QUANTILE_GRID: [f64; 12] = [
    0.0, 1.0, 5.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9, 100.0,
];

/// A summary either holds every sample or — after a round trip through the
/// digest JSON form — only the grid quantiles. Queries at grid points are
/// exact either way (digest values are computed by the same nearest-rank
/// rule before the samples are dropped); off-grid queries on a digest
/// round up to the next grid point, a conservative tail estimate.
#[derive(Debug, Clone, PartialEq)]
enum Repr {
    Full {
        sorted: Vec<f64>,
    },
    Digest {
        count: usize,
        mean: f64,
        /// `(percentile, value)` pairs on [`QUANTILE_GRID`], ascending.
        quantiles: Vec<(f64, f64)>,
    },
}

/// Summary statistics over a set of latencies (seconds).
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySummary {
    repr: Repr,
}

impl LatencySummary {
    /// Builds a summary from raw latencies (NaNs are rejected).
    ///
    /// # Panics
    ///
    /// Panics if any latency is NaN.
    pub fn new(mut latencies: Vec<f64>) -> Self {
        assert!(
            latencies.iter().all(|l| !l.is_nan()),
            "latencies must not be NaN"
        );
        latencies.sort_by(|a, b| a.total_cmp(b));
        LatencySummary {
            repr: Repr::Full { sorted: latencies },
        }
    }

    /// Sample count.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Full { sorted } => sorted.len(),
            Repr::Digest { count, .. } => *count,
        }
    }

    /// Whether the summary is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this summary still holds every raw sample (as opposed to a
    /// quantile digest deserialized from a large run's JSON).
    pub fn is_digest(&self) -> bool {
        matches!(self.repr, Repr::Digest { .. })
    }

    /// Mean latency.
    pub fn mean(&self) -> f64 {
        match &self.repr {
            Repr::Full { sorted } => {
                if sorted.is_empty() {
                    0.0
                } else {
                    rkvc_tensor::seq_sum_f64(sorted.iter().copied()) / sorted.len() as f64
                }
            }
            Repr::Digest { mean, .. } => *mean,
        }
    }

    /// Percentile in `[0, 100]` by the nearest-rank method: the sample at
    /// rank `ceil(p/100 * n)` (1-based), clamped to `[1, n]` so `p = 0`
    /// returns the minimum. Returns `0.0` on an empty summary, consistent
    /// with [`mean`](Self::mean) and [`max`](Self::max), so a
    /// zero-completion run cannot abort an experiment sweep.
    ///
    /// On a digest, grid-point queries return the exact nearest-rank value
    /// recorded at serialization time; off-grid queries return the value
    /// at the next grid point up.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        match &self.repr {
            Repr::Full { sorted } => {
                let n = sorted.len();
                if n == 0 {
                    return 0.0;
                }
                let rank = ((p / 100.0) * n as f64).ceil() as usize;
                sorted[rank.clamp(1, n) - 1]
            }
            Repr::Digest { quantiles, .. } => quantiles
                .iter()
                .find(|(gp, _)| *gp >= p)
                .or(quantiles.last())
                .map_or(0.0, |(_, v)| *v),
        }
    }

    /// Median latency.
    pub fn p50(&self) -> f64 {
        self.percentile(50.0)
    }

    /// 95th-percentile latency.
    pub fn p95(&self) -> f64 {
        self.percentile(95.0)
    }

    /// 99th-percentile (tail) latency — where Figure 5 separates GEAR.
    pub fn p99(&self) -> f64 {
        self.percentile(99.0)
    }

    /// Maximum latency.
    pub fn max(&self) -> f64 {
        match &self.repr {
            Repr::Full { sorted } => sorted.last().copied().unwrap_or(0.0),
            // The grid ends at p100 = max.
            Repr::Digest { quantiles, .. } => quantiles.last().map_or(0.0, |(_, v)| *v),
        }
    }

    /// Empirical CDF evaluated at `points`: fraction of samples `<= x`.
    /// On a digest the CDF is a 12-step staircase (the largest grid
    /// fraction whose value is `<= x`) — coarse but monotone and bounded.
    pub fn cdf(&self, points: &[f64]) -> Vec<f64> {
        match &self.repr {
            Repr::Full { sorted } => points
                .iter()
                .map(|&x| {
                    let n = sorted.partition_point(|&v| v <= x);
                    if sorted.is_empty() {
                        0.0
                    } else {
                        n as f64 / sorted.len() as f64
                    }
                })
                .collect(),
            Repr::Digest { quantiles, .. } => points
                .iter()
                .map(|&x| {
                    quantiles
                        .iter()
                        .filter(|(_, v)| *v <= x)
                        .map(|(gp, _)| gp / 100.0)
                        // rkvc-allow(D006): max is order-insensitive over the finite grid fractions
                        .fold(0.0, f64::max)
                })
                .collect(),
        }
    }

    /// The digest this summary would serialize to above
    /// [`FULL_SAMPLE_LIMIT`]: exact nearest-rank values on
    /// [`QUANTILE_GRID`].
    fn grid_quantiles(&self) -> Vec<(f64, f64)> {
        match &self.repr {
            Repr::Full { .. } => QUANTILE_GRID
                .iter()
                .map(|&p| (p, self.percentile(p)))
                .collect(),
            Repr::Digest { quantiles, .. } => quantiles.clone(),
        }
    }
}

// Hand-written (rather than `json_struct!`) so every serialized summary
// leads with its sample `count` — results JSON stays greppable without
// measuring the `sorted` array. `count` is derived, so parsing ignores it.
// At most FULL_SAMPLE_LIMIT samples serialize verbatim; above that the
// digest form (`count` + `mean` + `quantiles`) keeps a million-request
// fleet run's result file O(1) per metric instead of O(requests).
impl rkvc_tensor::json::ToJson for LatencySummary {
    fn to_json(&self) -> rkvc_tensor::json::JsonValue {
        use rkvc_tensor::json::{JsonValue, ToJson};
        if let Repr::Full { sorted } = &self.repr {
            if sorted.len() <= FULL_SAMPLE_LIMIT {
                return JsonValue::Object(vec![
                    ("count".to_owned(), ToJson::to_json(&sorted.len())),
                    ("sorted".to_owned(), ToJson::to_json(sorted)),
                ]);
            }
        }
        let quantiles = JsonValue::Array(
            self.grid_quantiles()
                .into_iter()
                .map(|(p, v)| JsonValue::Array(vec![JsonValue::Float(p), JsonValue::Float(v)]))
                .collect(),
        );
        JsonValue::Object(vec![
            ("count".to_owned(), ToJson::to_json(&self.len())),
            ("mean".to_owned(), JsonValue::Float(self.mean())),
            ("quantiles".to_owned(), quantiles),
        ])
    }
}

impl rkvc_tensor::json::FromJson for LatencySummary {
    fn from_json(
        v: &rkvc_tensor::json::JsonValue,
    ) -> Result<Self, rkvc_tensor::json::JsonError> {
        use rkvc_tensor::json::JsonError;
        let fields = v
            .as_object()
            .ok_or_else(|| JsonError::new("expected object for LatencySummary"))?;
        if fields.iter().any(|(k, _)| k == "sorted") {
            let sorted: Vec<f64> = rkvc_tensor::json::field(fields, "sorted")?;
            return Ok(LatencySummary::new(sorted));
        }
        let count: usize = rkvc_tensor::json::field(fields, "count")?;
        let mean: f64 = rkvc_tensor::json::field(fields, "mean")?;
        let raw: Vec<Vec<f64>> = rkvc_tensor::json::field(fields, "quantiles")?;
        let mut quantiles = Vec::with_capacity(raw.len());
        for pair in &raw {
            let [p, val] = pair.as_slice() else {
                return Err(JsonError::new("quantiles entries must be [p, value] pairs"));
            };
            if !(0.0..=100.0).contains(p) {
                return Err(JsonError::new("quantile percentile out of [0, 100]"));
            }
            if quantiles.last().is_some_and(|(prev, _): &(f64, f64)| prev >= p) {
                return Err(JsonError::new("quantile grid must be strictly ascending"));
            }
            quantiles.push((*p, *val));
        }
        if quantiles.is_empty() || count == 0 {
            return Err(JsonError::new(
                "digest LatencySummary needs a nonzero count and a quantile grid",
            ));
        }
        Ok(LatencySummary {
            repr: Repr::Digest {
                count,
                mean,
                quantiles,
            },
        })
    }
}

/// Per-request serving metric summaries over a set of completions — the
/// paper's serving-quality surface (§2.4): time-to-first-token, time
/// between output tokens, scheduler queue delay, and end-to-end latency,
/// each with full percentile support, plus preemption counts.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingMetrics {
    /// Completions summarized.
    pub completed: usize,
    /// Time-to-first-token (s).
    pub ttft: LatencySummary,
    /// Time between output tokens (s/token after the first).
    pub tbt: LatencySummary,
    /// Queue delay before first admission (s).
    pub queue_delay: LatencySummary,
    /// End-to-end latency (s).
    pub e2e: LatencySummary,
    /// Total preemptions across all requests.
    pub preemptions: usize,
}

impl ServingMetrics {
    /// Summarizes a completion stream (input order does not matter — every
    /// summary sorts its samples).
    pub fn from_completed(done: &[CompletedRequest]) -> Self {
        ServingMetrics {
            completed: done.len(),
            ttft: LatencySummary::new(done.iter().map(|c| c.ttft_s).collect()),
            tbt: LatencySummary::new(done.iter().map(|c| c.tbot_s()).collect()),
            queue_delay: LatencySummary::new(done.iter().map(|c| c.queue_delay_s).collect()),
            e2e: LatencySummary::new(done.iter().map(|c| c.e2e_s).collect()),
            preemptions: done.iter().map(|c| c.preemptions).sum(),
        }
    }

    /// The summary rows experiments emit: mean / p50 / p95 / p99 for each
    /// metric (zeros when empty).
    pub fn row(&self, summary: &LatencySummary) -> [f64; 4] {
        if summary.is_empty() {
            return [0.0; 4];
        }
        [summary.mean(), summary.p50(), summary.p95(), summary.p99()]
    }
}

rkvc_tensor::json_struct!(ServingMetrics {
    completed,
    ttft,
    tbt,
    queue_delay,
    e2e,
    preemptions,
});

/// One [`SloClass`]'s slice of a mixed-class run: completions, per-request
/// SLO attainment, token counts, and the class's own latency summaries.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassMetrics {
    /// The class summarized.
    pub class: SloClass,
    /// Completions in this class.
    pub completed: usize,
    /// Completions whose TTFT *and* mean TBT met the class targets.
    pub slo_met: usize,
    /// Tokens generated by this class.
    pub generated_tokens: usize,
    /// Tokens generated by completions that met their SLO.
    pub attained_tokens: usize,
    /// Time-to-first-token (s).
    pub ttft: LatencySummary,
    /// Time between output tokens (s/token after the first).
    pub tbt: LatencySummary,
    /// End-to-end latency (s).
    pub e2e: LatencySummary,
}

impl ClassMetrics {
    /// Fraction of this class's completions that met their SLO (1.0 when
    /// the class is empty — no request missed).
    pub fn attainment(&self) -> f64 {
        if self.completed == 0 {
            1.0
        } else {
            self.slo_met as f64 / self.completed as f64
        }
    }
}

rkvc_tensor::json_struct!(ClassMetrics {
    class,
    completed,
    slo_met,
    generated_tokens,
    attained_tokens,
    ttft,
    tbt,
    e2e,
});

/// SLO-centric summary of a mixed-class run: per-class breakdowns plus the
/// run-level throughput/goodput pair. *Goodput* counts only tokens from
/// completions that met their class targets, per second of makespan — the
/// joint quality/performance score SLO-aware scheduling optimizes. By
/// construction `0 <= goodput <= throughput`.
#[derive(Debug, Clone, PartialEq)]
pub struct SloMetrics {
    /// Per-class breakdowns in [`SloClass::all`] (reporting) order.
    pub per_class: Vec<ClassMetrics>,
    /// Total completions.
    pub completed: usize,
    /// Completions that met their class targets.
    pub slo_met: usize,
    /// Total tokens generated.
    pub generated_tokens: usize,
    /// Tokens from SLO-meeting completions.
    pub attained_tokens: usize,
    /// First arrival to last completion (s); 0 when empty.
    pub makespan_s: f64,
    /// Generated tokens per makespan second.
    pub throughput_tps: f64,
    /// Attained (within-SLO) tokens per makespan second.
    pub goodput_tps: f64,
}

impl SloMetrics {
    /// Summarizes a completion stream (input order does not matter).
    pub fn from_completed(done: &[CompletedRequest]) -> Self {
        let per_class: Vec<ClassMetrics> = SloClass::all()
            .into_iter()
            .map(|class| {
                let of_class: Vec<&CompletedRequest> =
                    done.iter().filter(|c| c.slo == class).collect();
                ClassMetrics {
                    class,
                    completed: of_class.len(),
                    slo_met: of_class.iter().filter(|c| c.slo_ok).count(),
                    generated_tokens: of_class.iter().map(|c| c.generated).sum(),
                    attained_tokens: of_class
                        .iter()
                        .filter(|c| c.slo_ok)
                        .map(|c| c.generated)
                        .sum(),
                    ttft: LatencySummary::new(of_class.iter().map(|c| c.ttft_s).collect()),
                    tbt: LatencySummary::new(of_class.iter().map(|c| c.tbot_s()).collect()),
                    e2e: LatencySummary::new(of_class.iter().map(|c| c.e2e_s).collect()),
                }
            })
            .collect();
        let completed = done.len();
        let slo_met = per_class.iter().map(|c| c.slo_met).sum();
        let generated_tokens = per_class.iter().map(|c| c.generated_tokens).sum();
        let attained_tokens = per_class.iter().map(|c| c.attained_tokens).sum();
        let first_arrival = done
            .iter()
            .map(|c| c.arrival_s)
            .min_by(|a, b| a.total_cmp(b));
        let last_done = done
            .iter()
            .map(|c| c.arrival_s + c.e2e_s)
            .max_by(|a, b| a.total_cmp(b));
        let makespan_s = match (first_arrival, last_done) {
            (Some(a), Some(b)) => (b - a).max(0.0),
            _ => 0.0,
        };
        let rate = |tokens: usize| {
            if makespan_s > 0.0 {
                tokens as f64 / makespan_s
            } else {
                0.0
            }
        };
        SloMetrics {
            throughput_tps: rate(generated_tokens),
            goodput_tps: rate(attained_tokens),
            per_class,
            completed,
            slo_met,
            generated_tokens,
            attained_tokens,
            makespan_s,
        }
    }

    /// Fraction of completions that met their SLO (1.0 when empty).
    pub fn attainment(&self) -> f64 {
        if self.completed == 0 {
            1.0
        } else {
            self.slo_met as f64 / self.completed as f64
        }
    }
}

rkvc_tensor::json_struct!(SloMetrics {
    per_class,
    completed,
    slo_met,
    generated_tokens,
    attained_tokens,
    makespan_s,
    throughput_tps,
    goodput_tps,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_on_known_data() {
        let s = LatencySummary::new((1..=100).map(|i| i as f64).collect());
        assert_eq!(s.p50(), 50.0);
        assert_eq!(s.p95(), 95.0);
        assert_eq!(s.p99(), 99.0);
        assert_eq!(s.max(), 100.0);
        assert!((s.mean() - 50.5).abs() < 1e-12);
    }

    #[test]
    fn nearest_rank_at_small_n() {
        // n = 3: rank(p) = ceil(3p/100). p50 -> rank 2, p95/p99 -> rank 3.
        let s = LatencySummary::new(vec![10.0, 20.0, 30.0]);
        assert_eq!(s.p50(), 20.0);
        assert_eq!(s.p95(), 30.0);
        assert_eq!(s.p99(), 30.0);
        assert_eq!(s.percentile(0.0), 10.0);
        // n = 40: p99 -> rank ceil(39.6) = 40, the true nearest-rank
        // sample (the floored linear index regressed to sorted[38]).
        let s = LatencySummary::new((1..=40).map(|i| i as f64).collect());
        assert_eq!(s.p99(), 40.0);
        assert_eq!(s.p95(), 38.0); // ceil(38.0) = 38.
        assert_eq!(s.p50(), 20.0); // ceil(20.0) = 20.
    }

    #[test]
    fn empty_summary_is_all_zeros_not_a_panic() {
        let s = LatencySummary::new(Vec::new());
        assert_eq!(s.percentile(50.0), 0.0);
        assert_eq!(s.p50(), 0.0);
        assert_eq!(s.p95(), 0.0);
        assert_eq!(s.p99(), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let s = LatencySummary::new(vec![1.0, 2.0, 2.0, 5.0]);
        let pts: Vec<f64> = (0..=6).map(|i| i as f64).collect();
        let cdf = s.cdf(&pts);
        assert_eq!(cdf[0], 0.0);
        assert_eq!(cdf[6], 1.0);
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(cdf[2], 0.75); // 3 of 4 samples <= 2.
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let s = LatencySummary::new(vec![5.0, 1.0, 3.0]);
        assert_eq!(s.p50(), 3.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        LatencySummary::new(vec![1.0, f64::NAN]);
    }

    #[test]
    fn serving_metrics_summarize_completions() {
        let mk = |id: u64, ttft: f64, e2e: f64, q: f64, gen: usize, pre: usize| CompletedRequest {
            id,
            server_id: 0,
            arrival_s: 0.0,
            ttft_s: ttft,
            e2e_s: e2e,
            generated: gen,
            queue_delay_s: q,
            preemptions: pre,
            slo: SloClass::Standard,
            slo_ok: true,
            session: None,
        };
        let done = vec![
            mk(0, 1.0, 11.0, 0.5, 101, 0),
            mk(1, 2.0, 4.0, 0.0, 3, 2),
        ];
        let m = ServingMetrics::from_completed(&done);
        assert_eq!(m.completed, 2);
        assert_eq!(m.preemptions, 2);
        assert!((m.ttft.mean() - 1.5).abs() < 1e-12);
        // TBTs: (11-1)/100 = 0.1 and (4-2)/2 = 1.0.
        assert!((m.tbt.max() - 1.0).abs() < 1e-12);
        assert!((m.queue_delay.max() - 0.5).abs() < 1e-12);
        let row = m.row(&m.e2e);
        assert!((row[0] - 7.5).abs() < 1e-12);
        assert_eq!(m.e2e.max(), 11.0);
        let empty = ServingMetrics::from_completed(&[]);
        assert_eq!(empty.row(&empty.ttft), [0.0; 4]);
    }

    #[test]
    fn latency_summary_json_leads_with_count() {
        let s = LatencySummary::new(vec![3.0, 1.0, 2.0]);
        let text = rkvc_tensor::json::to_string(&s);
        assert_eq!(text, r#"{"count":3,"sorted":[1.0,2.0,3.0]}"#);
        let back: LatencySummary = rkvc_tensor::json::from_str(&text).expect("round trip");
        assert_eq!(back, s);
        // `count` is derived on write, not trusted on read.
        let forged: LatencySummary =
            rkvc_tensor::json::from_str(r#"{"count":99,"sorted":[1.0]}"#).expect("parse");
        assert_eq!(forged.len(), 1);
    }

    #[test]
    fn large_summary_serializes_as_quantile_digest() {
        let n = FULL_SAMPLE_LIMIT + 500;
        let s = LatencySummary::new((1..=n).map(|i| i as f64).collect());
        let text = rkvc_tensor::json::to_string(&s);
        assert!(text.contains("\"quantiles\""), "large form must digest");
        assert!(!text.contains("\"sorted\""), "raw samples must be dropped");
        // The digest is O(grid), not O(n).
        assert!(text.len() < 600, "digest blew up: {} bytes", text.len());
        let back: LatencySummary = rkvc_tensor::json::from_str(&text).expect("round trip");
        assert!(back.is_digest());
        assert!(!s.is_digest());
        assert_eq!(back.len(), n);
        // Grid-point queries are exact nearest-rank values.
        for p in QUANTILE_GRID {
            assert_eq!(back.percentile(p), s.percentile(p), "p{p}");
        }
        assert_eq!(back.max(), s.max());
        assert!((back.mean() - s.mean()).abs() < 1e-9);
        // Off-grid queries round up to the next grid point.
        assert_eq!(back.percentile(97.0), s.percentile(99.0));
        // Digest CDF is monotone and bounded.
        let pts: Vec<f64> = (0..=16).map(|i| i as f64 * (n as f64 / 16.0)).collect();
        let cdf = back.cdf(&pts);
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
        assert!(cdf.iter().all(|&c| (0.0..=1.0).contains(&c)));
        assert_eq!(*cdf.last().expect("nonempty"), 1.0);
        // Digests re-serialize stably.
        assert_eq!(rkvc_tensor::json::to_string(&back), text);
    }

    #[test]
    fn full_form_holds_exactly_at_the_limit() {
        let s = LatencySummary::new((1..=FULL_SAMPLE_LIMIT).map(|i| i as f64).collect());
        let text = rkvc_tensor::json::to_string(&s);
        assert!(text.contains("\"sorted\""));
        let back: LatencySummary = rkvc_tensor::json::from_str(&text).expect("round trip");
        assert_eq!(back, s);
    }

    #[test]
    fn malformed_digests_are_rejected() {
        for bad in [
            r#"{"count":5,"mean":1.0,"quantiles":[[50.0]]}"#,
            r#"{"count":5,"mean":1.0,"quantiles":[[101.0,1.0]]}"#,
            r#"{"count":5,"mean":1.0,"quantiles":[[50.0,1.0],[25.0,0.5]]}"#,
            r#"{"count":5,"mean":1.0,"quantiles":[]}"#,
            r#"{"count":0,"mean":0.0,"quantiles":[[50.0,0.0]]}"#,
        ] {
            assert!(
                rkvc_tensor::json::from_str::<LatencySummary>(bad).is_err(),
                "accepted malformed digest: {bad}"
            );
        }
    }

    #[test]
    fn slo_metrics_split_by_class_and_bound_goodput() {
        let mk = |id: u64,
                  class: SloClass,
                  ok: bool,
                  arrival: f64,
                  e2e: f64,
                  gen: usize| CompletedRequest {
            id,
            server_id: 0,
            arrival_s: arrival,
            ttft_s: 0.5,
            e2e_s: e2e,
            generated: gen,
            queue_delay_s: 0.0,
            preemptions: 0,
            slo: class,
            slo_ok: ok,
            session: None,
        };
        let done = vec![
            mk(0, SloClass::Interactive, true, 0.0, 4.0, 100),
            mk(1, SloClass::Interactive, false, 1.0, 6.0, 50),
            mk(2, SloClass::Batch, true, 2.0, 8.0, 200),
        ];
        let m = SloMetrics::from_completed(&done);
        assert_eq!(m.completed, 3);
        assert_eq!(m.slo_met, 2);
        assert_eq!(m.generated_tokens, 350);
        assert_eq!(m.attained_tokens, 300);
        // Makespan: last completion at 2 + 8 = 10, first arrival at 0.
        assert!((m.makespan_s - 10.0).abs() < 1e-12);
        assert!((m.throughput_tps - 35.0).abs() < 1e-12);
        assert!((m.goodput_tps - 30.0).abs() < 1e-12);
        assert!(m.goodput_tps <= m.throughput_tps);
        assert!((m.attainment() - 2.0 / 3.0).abs() < 1e-12);
        // Per-class rows come back in reporting order with correct splits.
        assert_eq!(m.per_class.len(), 3);
        assert_eq!(m.per_class[0].class, SloClass::Interactive);
        assert_eq!(m.per_class[0].completed, 2);
        assert_eq!(m.per_class[0].slo_met, 1);
        assert_eq!(m.per_class[0].attained_tokens, 100);
        assert_eq!(m.per_class[1].class, SloClass::Standard);
        assert_eq!(m.per_class[1].completed, 0);
        assert_eq!(m.per_class[1].attainment(), 1.0);
        assert_eq!(m.per_class[2].class, SloClass::Batch);
        assert_eq!(m.per_class[2].completed, 1);
        // Per-class completions sum to the total.
        let sum: usize = m.per_class.iter().map(|c| c.completed).sum();
        assert_eq!(sum, m.completed);
        // Empty stream: all zeros, no division blowups.
        let empty = SloMetrics::from_completed(&[]);
        assert_eq!(empty.makespan_s, 0.0);
        assert_eq!(empty.throughput_tps, 0.0);
        assert_eq!(empty.goodput_tps, 0.0);
        assert_eq!(empty.attainment(), 1.0);
    }
}
