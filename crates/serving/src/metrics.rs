//! Latency reductions: percentiles and CDFs.


/// Summary statistics over a set of latencies (seconds).
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySummary {
    sorted: Vec<f64>,
}

impl LatencySummary {
    /// Builds a summary from raw latencies (NaNs are rejected).
    ///
    /// # Panics
    ///
    /// Panics if any latency is NaN.
    pub fn new(mut latencies: Vec<f64>) -> Self {
        assert!(
            latencies.iter().all(|l| !l.is_nan()),
            "latencies must not be NaN"
        );
        latencies.sort_by(|a, b| a.total_cmp(b));
        LatencySummary { sorted: latencies }
    }

    /// Sample count.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the summary is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Mean latency.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            0.0
        } else {
            self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
        }
    }

    /// Percentile in `[0, 100]` (nearest-rank).
    ///
    /// # Panics
    ///
    /// Panics if the summary is empty or `p` is out of range.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "empty summary");
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        let rank = ((p / 100.0) * (self.sorted.len() - 1) as f64).floor() as usize;
        self.sorted[rank]
    }

    /// Median latency.
    pub fn p50(&self) -> f64 {
        self.percentile(50.0)
    }

    /// 95th-percentile latency.
    pub fn p95(&self) -> f64 {
        self.percentile(95.0)
    }

    /// 99th-percentile (tail) latency — where Figure 5 separates GEAR.
    pub fn p99(&self) -> f64 {
        self.percentile(99.0)
    }

    /// Maximum latency.
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(0.0)
    }

    /// Empirical CDF evaluated at `points`: fraction of samples `<= x`.
    pub fn cdf(&self, points: &[f64]) -> Vec<f64> {
        points
            .iter()
            .map(|&x| {
                let n = self.sorted.partition_point(|&v| v <= x);
                if self.sorted.is_empty() {
                    0.0
                } else {
                    n as f64 / self.sorted.len() as f64
                }
            })
            .collect()
    }
}

rkvc_tensor::json_struct!(LatencySummary { sorted });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_on_known_data() {
        let s = LatencySummary::new((1..=100).map(|i| i as f64).collect());
        assert_eq!(s.p50(), 50.0);
        assert_eq!(s.p95(), 95.0);
        assert_eq!(s.p99(), 99.0);
        assert_eq!(s.max(), 100.0);
        assert!((s.mean() - 50.5).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let s = LatencySummary::new(vec![1.0, 2.0, 2.0, 5.0]);
        let pts: Vec<f64> = (0..=6).map(|i| i as f64).collect();
        let cdf = s.cdf(&pts);
        assert_eq!(cdf[0], 0.0);
        assert_eq!(cdf[6], 1.0);
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(cdf[2], 0.75); // 3 of 4 samples <= 2.
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let s = LatencySummary::new(vec![5.0, 1.0, 3.0]);
        assert_eq!(s.p50(), 3.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        LatencySummary::new(vec![1.0, f64::NAN]);
    }
}
