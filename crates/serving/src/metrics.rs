//! Latency reductions: percentiles and CDFs, plus per-request serving
//! metric summaries (TTFT / TBT / queue delay / E2E) for experiment JSON —
//! and, for mixed-class traffic, per-[`SloClass`] breakdowns with
//! attainment and goodput ([`SloMetrics`]).

use crate::{CompletedRequest, SloClass};


/// Summary statistics over a set of latencies (seconds).
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySummary {
    sorted: Vec<f64>,
}

impl LatencySummary {
    /// Builds a summary from raw latencies (NaNs are rejected).
    ///
    /// # Panics
    ///
    /// Panics if any latency is NaN.
    pub fn new(mut latencies: Vec<f64>) -> Self {
        assert!(
            latencies.iter().all(|l| !l.is_nan()),
            "latencies must not be NaN"
        );
        latencies.sort_by(|a, b| a.total_cmp(b));
        LatencySummary { sorted: latencies }
    }

    /// Sample count.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the summary is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Mean latency.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            0.0
        } else {
            rkvc_tensor::seq_sum_f64(self.sorted.iter().copied()) / self.sorted.len() as f64
        }
    }

    /// Percentile in `[0, 100]` by the nearest-rank method: the sample at
    /// rank `ceil(p/100 * n)` (1-based), clamped to `[1, n]` so `p = 0`
    /// returns the minimum. Returns `0.0` on an empty summary, consistent
    /// with [`mean`](Self::mean) and [`max`](Self::max), so a
    /// zero-completion run cannot abort an experiment sweep.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        let n = self.sorted.len();
        if n == 0 {
            return 0.0;
        }
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        self.sorted[rank.clamp(1, n) - 1]
    }

    /// Median latency.
    pub fn p50(&self) -> f64 {
        self.percentile(50.0)
    }

    /// 95th-percentile latency.
    pub fn p95(&self) -> f64 {
        self.percentile(95.0)
    }

    /// 99th-percentile (tail) latency — where Figure 5 separates GEAR.
    pub fn p99(&self) -> f64 {
        self.percentile(99.0)
    }

    /// Maximum latency.
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(0.0)
    }

    /// Empirical CDF evaluated at `points`: fraction of samples `<= x`.
    pub fn cdf(&self, points: &[f64]) -> Vec<f64> {
        points
            .iter()
            .map(|&x| {
                let n = self.sorted.partition_point(|&v| v <= x);
                if self.sorted.is_empty() {
                    0.0
                } else {
                    n as f64 / self.sorted.len() as f64
                }
            })
            .collect()
    }
}

// Hand-written (rather than `json_struct!`) so every serialized summary
// leads with its sample `count` — results JSON stays greppable without
// measuring the `sorted` array. `count` is derived, so parsing ignores it.
impl rkvc_tensor::json::ToJson for LatencySummary {
    fn to_json(&self) -> rkvc_tensor::json::JsonValue {
        rkvc_tensor::json::JsonValue::Object(vec![
            (
                "count".to_owned(),
                rkvc_tensor::json::ToJson::to_json(&self.sorted.len()),
            ),
            (
                "sorted".to_owned(),
                rkvc_tensor::json::ToJson::to_json(&self.sorted),
            ),
        ])
    }
}

impl rkvc_tensor::json::FromJson for LatencySummary {
    fn from_json(
        v: &rkvc_tensor::json::JsonValue,
    ) -> Result<Self, rkvc_tensor::json::JsonError> {
        let fields = v.as_object().ok_or_else(|| {
            rkvc_tensor::json::JsonError::new("expected object for LatencySummary")
        })?;
        let sorted: Vec<f64> = rkvc_tensor::json::field(fields, "sorted")?;
        Ok(LatencySummary::new(sorted))
    }
}

/// Per-request serving metric summaries over a set of completions — the
/// paper's serving-quality surface (§2.4): time-to-first-token, time
/// between output tokens, scheduler queue delay, and end-to-end latency,
/// each with full percentile support, plus preemption counts.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingMetrics {
    /// Completions summarized.
    pub completed: usize,
    /// Time-to-first-token (s).
    pub ttft: LatencySummary,
    /// Time between output tokens (s/token after the first).
    pub tbt: LatencySummary,
    /// Queue delay before first admission (s).
    pub queue_delay: LatencySummary,
    /// End-to-end latency (s).
    pub e2e: LatencySummary,
    /// Total preemptions across all requests.
    pub preemptions: usize,
}

impl ServingMetrics {
    /// Summarizes a completion stream (input order does not matter — every
    /// summary sorts its samples).
    pub fn from_completed(done: &[CompletedRequest]) -> Self {
        ServingMetrics {
            completed: done.len(),
            ttft: LatencySummary::new(done.iter().map(|c| c.ttft_s).collect()),
            tbt: LatencySummary::new(done.iter().map(|c| c.tbot_s()).collect()),
            queue_delay: LatencySummary::new(done.iter().map(|c| c.queue_delay_s).collect()),
            e2e: LatencySummary::new(done.iter().map(|c| c.e2e_s).collect()),
            preemptions: done.iter().map(|c| c.preemptions).sum(),
        }
    }

    /// The summary rows experiments emit: mean / p50 / p95 / p99 for each
    /// metric (zeros when empty).
    pub fn row(&self, summary: &LatencySummary) -> [f64; 4] {
        if summary.is_empty() {
            return [0.0; 4];
        }
        [summary.mean(), summary.p50(), summary.p95(), summary.p99()]
    }
}

rkvc_tensor::json_struct!(ServingMetrics {
    completed,
    ttft,
    tbt,
    queue_delay,
    e2e,
    preemptions,
});

/// One [`SloClass`]'s slice of a mixed-class run: completions, per-request
/// SLO attainment, token counts, and the class's own latency summaries.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassMetrics {
    /// The class summarized.
    pub class: SloClass,
    /// Completions in this class.
    pub completed: usize,
    /// Completions whose TTFT *and* mean TBT met the class targets.
    pub slo_met: usize,
    /// Tokens generated by this class.
    pub generated_tokens: usize,
    /// Tokens generated by completions that met their SLO.
    pub attained_tokens: usize,
    /// Time-to-first-token (s).
    pub ttft: LatencySummary,
    /// Time between output tokens (s/token after the first).
    pub tbt: LatencySummary,
    /// End-to-end latency (s).
    pub e2e: LatencySummary,
}

impl ClassMetrics {
    /// Fraction of this class's completions that met their SLO (1.0 when
    /// the class is empty — no request missed).
    pub fn attainment(&self) -> f64 {
        if self.completed == 0 {
            1.0
        } else {
            self.slo_met as f64 / self.completed as f64
        }
    }
}

rkvc_tensor::json_struct!(ClassMetrics {
    class,
    completed,
    slo_met,
    generated_tokens,
    attained_tokens,
    ttft,
    tbt,
    e2e,
});

/// SLO-centric summary of a mixed-class run: per-class breakdowns plus the
/// run-level throughput/goodput pair. *Goodput* counts only tokens from
/// completions that met their class targets, per second of makespan — the
/// joint quality/performance score SLO-aware scheduling optimizes. By
/// construction `0 <= goodput <= throughput`.
#[derive(Debug, Clone, PartialEq)]
pub struct SloMetrics {
    /// Per-class breakdowns in [`SloClass::all`] (reporting) order.
    pub per_class: Vec<ClassMetrics>,
    /// Total completions.
    pub completed: usize,
    /// Completions that met their class targets.
    pub slo_met: usize,
    /// Total tokens generated.
    pub generated_tokens: usize,
    /// Tokens from SLO-meeting completions.
    pub attained_tokens: usize,
    /// First arrival to last completion (s); 0 when empty.
    pub makespan_s: f64,
    /// Generated tokens per makespan second.
    pub throughput_tps: f64,
    /// Attained (within-SLO) tokens per makespan second.
    pub goodput_tps: f64,
}

impl SloMetrics {
    /// Summarizes a completion stream (input order does not matter).
    pub fn from_completed(done: &[CompletedRequest]) -> Self {
        let per_class: Vec<ClassMetrics> = SloClass::all()
            .into_iter()
            .map(|class| {
                let of_class: Vec<&CompletedRequest> =
                    done.iter().filter(|c| c.slo == class).collect();
                ClassMetrics {
                    class,
                    completed: of_class.len(),
                    slo_met: of_class.iter().filter(|c| c.slo_ok).count(),
                    generated_tokens: of_class.iter().map(|c| c.generated).sum(),
                    attained_tokens: of_class
                        .iter()
                        .filter(|c| c.slo_ok)
                        .map(|c| c.generated)
                        .sum(),
                    ttft: LatencySummary::new(of_class.iter().map(|c| c.ttft_s).collect()),
                    tbt: LatencySummary::new(of_class.iter().map(|c| c.tbot_s()).collect()),
                    e2e: LatencySummary::new(of_class.iter().map(|c| c.e2e_s).collect()),
                }
            })
            .collect();
        let completed = done.len();
        let slo_met = per_class.iter().map(|c| c.slo_met).sum();
        let generated_tokens = per_class.iter().map(|c| c.generated_tokens).sum();
        let attained_tokens = per_class.iter().map(|c| c.attained_tokens).sum();
        let first_arrival = done
            .iter()
            .map(|c| c.arrival_s)
            .min_by(|a, b| a.total_cmp(b));
        let last_done = done
            .iter()
            .map(|c| c.arrival_s + c.e2e_s)
            .max_by(|a, b| a.total_cmp(b));
        let makespan_s = match (first_arrival, last_done) {
            (Some(a), Some(b)) => (b - a).max(0.0),
            _ => 0.0,
        };
        let rate = |tokens: usize| {
            if makespan_s > 0.0 {
                tokens as f64 / makespan_s
            } else {
                0.0
            }
        };
        SloMetrics {
            throughput_tps: rate(generated_tokens),
            goodput_tps: rate(attained_tokens),
            per_class,
            completed,
            slo_met,
            generated_tokens,
            attained_tokens,
            makespan_s,
        }
    }

    /// Fraction of completions that met their SLO (1.0 when empty).
    pub fn attainment(&self) -> f64 {
        if self.completed == 0 {
            1.0
        } else {
            self.slo_met as f64 / self.completed as f64
        }
    }
}

rkvc_tensor::json_struct!(SloMetrics {
    per_class,
    completed,
    slo_met,
    generated_tokens,
    attained_tokens,
    makespan_s,
    throughput_tps,
    goodput_tps,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_on_known_data() {
        let s = LatencySummary::new((1..=100).map(|i| i as f64).collect());
        assert_eq!(s.p50(), 50.0);
        assert_eq!(s.p95(), 95.0);
        assert_eq!(s.p99(), 99.0);
        assert_eq!(s.max(), 100.0);
        assert!((s.mean() - 50.5).abs() < 1e-12);
    }

    #[test]
    fn nearest_rank_at_small_n() {
        // n = 3: rank(p) = ceil(3p/100). p50 -> rank 2, p95/p99 -> rank 3.
        let s = LatencySummary::new(vec![10.0, 20.0, 30.0]);
        assert_eq!(s.p50(), 20.0);
        assert_eq!(s.p95(), 30.0);
        assert_eq!(s.p99(), 30.0);
        assert_eq!(s.percentile(0.0), 10.0);
        // n = 40: p99 -> rank ceil(39.6) = 40, the true nearest-rank
        // sample (the floored linear index regressed to sorted[38]).
        let s = LatencySummary::new((1..=40).map(|i| i as f64).collect());
        assert_eq!(s.p99(), 40.0);
        assert_eq!(s.p95(), 38.0); // ceil(38.0) = 38.
        assert_eq!(s.p50(), 20.0); // ceil(20.0) = 20.
    }

    #[test]
    fn empty_summary_is_all_zeros_not_a_panic() {
        let s = LatencySummary::new(Vec::new());
        assert_eq!(s.percentile(50.0), 0.0);
        assert_eq!(s.p50(), 0.0);
        assert_eq!(s.p95(), 0.0);
        assert_eq!(s.p99(), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let s = LatencySummary::new(vec![1.0, 2.0, 2.0, 5.0]);
        let pts: Vec<f64> = (0..=6).map(|i| i as f64).collect();
        let cdf = s.cdf(&pts);
        assert_eq!(cdf[0], 0.0);
        assert_eq!(cdf[6], 1.0);
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(cdf[2], 0.75); // 3 of 4 samples <= 2.
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let s = LatencySummary::new(vec![5.0, 1.0, 3.0]);
        assert_eq!(s.p50(), 3.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        LatencySummary::new(vec![1.0, f64::NAN]);
    }

    #[test]
    fn serving_metrics_summarize_completions() {
        let mk = |id: u64, ttft: f64, e2e: f64, q: f64, gen: usize, pre: usize| CompletedRequest {
            id,
            server_id: 0,
            arrival_s: 0.0,
            ttft_s: ttft,
            e2e_s: e2e,
            generated: gen,
            queue_delay_s: q,
            preemptions: pre,
            slo: SloClass::Standard,
            slo_ok: true,
            session: None,
        };
        let done = vec![
            mk(0, 1.0, 11.0, 0.5, 101, 0),
            mk(1, 2.0, 4.0, 0.0, 3, 2),
        ];
        let m = ServingMetrics::from_completed(&done);
        assert_eq!(m.completed, 2);
        assert_eq!(m.preemptions, 2);
        assert!((m.ttft.mean() - 1.5).abs() < 1e-12);
        // TBTs: (11-1)/100 = 0.1 and (4-2)/2 = 1.0.
        assert!((m.tbt.max() - 1.0).abs() < 1e-12);
        assert!((m.queue_delay.max() - 0.5).abs() < 1e-12);
        let row = m.row(&m.e2e);
        assert!((row[0] - 7.5).abs() < 1e-12);
        assert_eq!(m.e2e.max(), 11.0);
        let empty = ServingMetrics::from_completed(&[]);
        assert_eq!(empty.row(&empty.ttft), [0.0; 4]);
    }

    #[test]
    fn latency_summary_json_leads_with_count() {
        let s = LatencySummary::new(vec![3.0, 1.0, 2.0]);
        let text = rkvc_tensor::json::to_string(&s);
        assert_eq!(text, r#"{"count":3,"sorted":[1.0,2.0,3.0]}"#);
        let back: LatencySummary = rkvc_tensor::json::from_str(&text).expect("round trip");
        assert_eq!(back, s);
        // `count` is derived on write, not trusted on read.
        let forged: LatencySummary =
            rkvc_tensor::json::from_str(r#"{"count":99,"sorted":[1.0]}"#).expect("parse");
        assert_eq!(forged.len(), 1);
    }

    #[test]
    fn slo_metrics_split_by_class_and_bound_goodput() {
        let mk = |id: u64,
                  class: SloClass,
                  ok: bool,
                  arrival: f64,
                  e2e: f64,
                  gen: usize| CompletedRequest {
            id,
            server_id: 0,
            arrival_s: arrival,
            ttft_s: 0.5,
            e2e_s: e2e,
            generated: gen,
            queue_delay_s: 0.0,
            preemptions: 0,
            slo: class,
            slo_ok: ok,
            session: None,
        };
        let done = vec![
            mk(0, SloClass::Interactive, true, 0.0, 4.0, 100),
            mk(1, SloClass::Interactive, false, 1.0, 6.0, 50),
            mk(2, SloClass::Batch, true, 2.0, 8.0, 200),
        ];
        let m = SloMetrics::from_completed(&done);
        assert_eq!(m.completed, 3);
        assert_eq!(m.slo_met, 2);
        assert_eq!(m.generated_tokens, 350);
        assert_eq!(m.attained_tokens, 300);
        // Makespan: last completion at 2 + 8 = 10, first arrival at 0.
        assert!((m.makespan_s - 10.0).abs() < 1e-12);
        assert!((m.throughput_tps - 35.0).abs() < 1e-12);
        assert!((m.goodput_tps - 30.0).abs() < 1e-12);
        assert!(m.goodput_tps <= m.throughput_tps);
        assert!((m.attainment() - 2.0 / 3.0).abs() < 1e-12);
        // Per-class rows come back in reporting order with correct splits.
        assert_eq!(m.per_class.len(), 3);
        assert_eq!(m.per_class[0].class, SloClass::Interactive);
        assert_eq!(m.per_class[0].completed, 2);
        assert_eq!(m.per_class[0].slo_met, 1);
        assert_eq!(m.per_class[0].attained_tokens, 100);
        assert_eq!(m.per_class[1].class, SloClass::Standard);
        assert_eq!(m.per_class[1].completed, 0);
        assert_eq!(m.per_class[1].attainment(), 1.0);
        assert_eq!(m.per_class[2].class, SloClass::Batch);
        assert_eq!(m.per_class[2].completed, 1);
        // Per-class completions sum to the total.
        let sum: usize = m.per_class.iter().map(|c| c.completed).sum();
        assert_eq!(sum, m.completed);
        // Empty stream: all zeros, no division blowups.
        let empty = SloMetrics::from_completed(&[]);
        assert_eq!(empty.makespan_s, 0.0);
        assert_eq!(empty.throughput_tps, 0.0);
        assert_eq!(empty.goodput_tps, 0.0);
        assert_eq!(empty.attainment(), 1.0);
    }
}
