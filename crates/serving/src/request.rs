//! Requests flowing through the serving simulator.

use crate::SloClass;

/// Position of a request inside a multi-turn conversation.
///
/// Turn `k` of a session is emitted only after turn `k − 1` completes (the
/// engine schedules follow-up arrivals causally), and its prompt opens
/// with the previous turn's full context — `carried_tokens` of KV the
/// engine re-registers via shared blocks instead of re-prefilling when the
/// session's cache is still resident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionRef {
    /// Session (conversation) id.
    pub session: u64,
    /// Zero-based turn index within the session.
    pub turn: u32,
    /// Leading prompt tokens carried over from the previous turn
    /// (system prefix + accumulated history; 0 on the first turn).
    pub carried_tokens: usize,
    /// Whether this is the session's final turn — after it completes the
    /// engine frees the session's KV instead of parking it for reuse.
    pub last_turn: bool,
}

rkvc_tensor::json_struct!(SessionRef {
    session,
    turn,
    carried_tokens,
    last_turn,
});

/// A request submitted to a server or cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct SimRequest {
    /// Unique request id.
    pub id: u64,
    /// Arrival time in seconds.
    pub arrival_s: f64,
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// Response length (tokens) the request produces on the default
    /// serving configuration.
    pub response_len: usize,
    /// Optional per-server response lengths for cluster runs where servers
    /// run different compression policies (compression shifts lengths —
    /// paper §4.3). Index = server id; falls back to `response_len`.
    pub response_len_by_server: Vec<usize>,
    /// Shared-prefix group id (system prompt identity). Requests in the
    /// same group open with identical `prefix_len`-token prefixes, which a
    /// prefix-sharing block manager can deduplicate. Meaningless when
    /// `prefix_len == 0`.
    pub prefix_group: u64,
    /// Leading tokens of the prompt shared verbatim with the group
    /// (0 = no sharing).
    pub prefix_len: usize,
    /// Latency class (defaults to [`SloClass::Standard`]).
    pub slo: SloClass,
    /// Multi-turn conversation membership (`None` for single-shot
    /// requests — the seed-compatible default).
    pub session: Option<SessionRef>,
}

impl SimRequest {
    /// Creates a request with a single response length and no shared
    /// prefix.
    pub fn new(id: u64, arrival_s: f64, prompt_len: usize, response_len: usize) -> Self {
        SimRequest {
            id,
            arrival_s,
            prompt_len,
            response_len,
            response_len_by_server: Vec::new(),
            prefix_group: 0,
            prefix_len: 0,
            slo: SloClass::Standard,
            session: None,
        }
    }

    /// Marks the first `prefix_len` prompt tokens as shared with group
    /// `group` (clamped to the prompt length).
    pub fn with_shared_prefix(mut self, group: u64, prefix_len: usize) -> Self {
        self.prefix_group = group;
        self.prefix_len = prefix_len.min(self.prompt_len);
        self
    }

    /// Sets the request's latency class.
    pub fn with_slo(mut self, class: SloClass) -> Self {
        self.slo = class;
        self
    }

    /// Places the request inside a multi-turn session (`carried_tokens`
    /// clamped to the prompt length — carried context is a prompt prefix
    /// by construction).
    pub fn with_session(mut self, mut session: SessionRef) -> Self {
        session.carried_tokens = session.carried_tokens.min(self.prompt_len);
        self.session = Some(session);
        self
    }

    /// Response length if served by `server_id`.
    pub fn response_len_on(&self, server_id: usize) -> usize {
        self.response_len_by_server
            .get(server_id)
            .copied()
            .unwrap_or(self.response_len)
    }
}

/// A finished request with its measured latencies.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedRequest {
    /// The request id.
    pub id: u64,
    /// Server that executed it.
    pub server_id: usize,
    /// Arrival time (seconds).
    pub arrival_s: f64,
    /// Time-to-first-token (seconds from arrival).
    pub ttft_s: f64,
    /// End-to-end latency (seconds from arrival to last token).
    pub e2e_s: f64,
    /// Tokens generated.
    pub generated: usize,
    /// Seconds spent queued before first admission (0 when admitted at
    /// arrival).
    pub queue_delay_s: f64,
    /// Times the scheduler preempted (evicted-and-recomputed) the request.
    pub preemptions: usize,
    /// Latency class the request was served under.
    pub slo: SloClass,
    /// Whether the completion met its class targets (TTFT and mean TBT
    /// both within budget) — per-request SLO attainment.
    pub slo_ok: bool,
    /// Session membership carried over from the request.
    pub session: Option<SessionRef>,
}

impl CompletedRequest {
    /// Time-between-output-tokens (TBOT), the paper's second key serving
    /// metric (§2.4): mean seconds per generated token after the first.
    /// Zero when at most one token was generated.
    pub fn tbot_s(&self) -> f64 {
        if self.generated <= 1 {
            0.0
        } else {
            (self.e2e_s - self.ttft_s) / (self.generated - 1) as f64
        }
    }
}

rkvc_tensor::json_struct!(SimRequest {
    id,
    arrival_s,
    prompt_len,
    response_len,
    response_len_by_server,
    prefix_group,
    prefix_len,
    slo,
    session,
});
rkvc_tensor::json_struct!(CompletedRequest {
    id,
    server_id,
    arrival_s,
    ttft_s,
    e2e_s,
    generated,
    queue_delay_s,
    preemptions,
    slo,
    slo_ok,
    session,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tbot_is_decode_time_per_token() {
        let c = CompletedRequest {
            id: 0,
            server_id: 0,
            arrival_s: 0.0,
            ttft_s: 1.0,
            e2e_s: 11.0,
            generated: 101,
            queue_delay_s: 0.5,
            preemptions: 0,
            slo: SloClass::Standard,
            slo_ok: true,
            session: None,
        };
        assert!((c.tbot_s() - 0.1).abs() < 1e-12);
        let single = CompletedRequest { generated: 1, ..c };
        assert_eq!(single.tbot_s(), 0.0);
    }

    #[test]
    fn per_server_lengths_fall_back() {
        let mut r = SimRequest::new(1, 0.0, 100, 50);
        assert_eq!(r.response_len_on(3), 50);
        r.response_len_by_server = vec![50, 80];
        assert_eq!(r.response_len_on(1), 80);
        assert_eq!(r.response_len_on(9), 50);
    }

    #[test]
    fn shared_prefix_is_clamped_to_prompt() {
        let r = SimRequest::new(1, 0.0, 100, 50).with_shared_prefix(7, 500);
        assert_eq!(r.prefix_group, 7);
        assert_eq!(r.prefix_len, 100);
        let plain = SimRequest::new(2, 0.0, 100, 50);
        assert_eq!(plain.prefix_len, 0);
    }

    #[test]
    fn slo_and_session_builders_annotate() {
        let plain = SimRequest::new(1, 0.0, 100, 50);
        assert_eq!(plain.slo, SloClass::Standard);
        assert_eq!(plain.session, None);
        let r = SimRequest::new(2, 0.0, 100, 50)
            .with_slo(SloClass::Interactive)
            .with_session(SessionRef {
                session: 9,
                turn: 1,
                carried_tokens: 400, // clamped: carried KV is a prompt prefix
                last_turn: false,
            });
        assert_eq!(r.slo, SloClass::Interactive);
        let s = r.session.expect("session set");
        assert_eq!(s.session, 9);
        assert_eq!(s.turn, 1);
        assert_eq!(s.carried_tokens, 100);
        assert!(!s.last_turn);
    }
}
