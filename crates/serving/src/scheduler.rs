//! Pluggable admission/preemption policies for the serving engine.
//!
//! A [`Scheduler`] makes exactly two decisions inside
//! [`ServerCore::iteration`](crate::engine): which queued request to try
//! admitting next, and — when the block pool runs dry mid-decode — which
//! running sequence to evict. Everything else (costing, block accounting,
//! event ordering) is shared engine code, so policies stay tiny and every
//! policy inherits the engine's bit-reproducibility: all tie-breaks go
//! through monotone counters, never iteration order of a map or float
//! equality.

use std::collections::VecDeque;

use crate::{RunningSeq, SimClock, Waiting};

/// An admission + preemption policy. Implementations must be determinstic
/// pure functions of their arguments — the engine calls them at
/// reproducible instants and expects reproducible answers.
pub trait Scheduler: std::fmt::Debug + Sync {
    /// Human-readable policy name (used in experiment tables and benches).
    fn label(&self) -> &'static str;

    /// Index into `queue` of the next request to try admitting, or `None`
    /// to stop admitting this iteration. The engine applies the arrival
    /// gate itself: a pick that has not yet arrived admits only on an idle
    /// server (which jumps its clock to the arrival).
    fn admit_pick(&self, queue: &VecDeque<Waiting>, clock: SimClock) -> Option<usize>;

    /// Victim among `running` to evict when the pool runs dry while
    /// `grower` tries to append a token, or `None` to let `grower` run on
    /// at a capped KV footprint (the seed behaviour). Must not name a
    /// finished sequence (its blocks free at the end of the iteration
    /// anyway).
    fn preempt_victim(&self, running: &[RunningSeq], grower: usize) -> Option<usize>;
}

/// First-come-first-served: admit in arrival order, never preempt. This is
/// the seed lockstep simulator's policy, bit-compatible with it — the
/// oracle the engine refactor is verified against.
#[derive(Debug, Clone, Copy, Default)]
pub struct FcfsScheduler;

impl Scheduler for FcfsScheduler {
    fn label(&self) -> &'static str {
        "fcfs"
    }

    fn admit_pick(&self, queue: &VecDeque<Waiting>, _clock: SimClock) -> Option<usize> {
        if queue.is_empty() {
            None
        } else {
            Some(0)
        }
    }

    fn preempt_victim(&self, _running: &[RunningSeq], _grower: usize) -> Option<usize> {
        None
    }
}

/// Shortest-predicted-first: among requests that have already arrived,
/// admit the one the router's length predictor expects to finish soonest
/// (ties broken by enqueue order). With nothing arrived yet, falls back to
/// the earliest arrival so idle servers wake exactly like FCFS. Never
/// preempts.
///
/// Predictions flow in through the existing
/// [`RoutePredictor`](crate::RoutePredictor) seam: the cluster stamps each
/// request with `predicted_response_len` at routing time, so this policy
/// consumes `rkvc_core`'s length predictor without a new dependency.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpfScheduler;

impl Scheduler for SpfScheduler {
    fn label(&self) -> &'static str {
        "spf"
    }

    fn admit_pick(&self, queue: &VecDeque<Waiting>, clock: SimClock) -> Option<usize> {
        let arrived = queue
            .iter()
            .enumerate()
            .filter(|(_, w)| SimClock::from_secs(w.arrival_s()) <= clock)
            .min_by(|(_, a), (_, b)| {
                a.predicted_len()
                    .total_cmp(&b.predicted_len())
                    .then(a.queue_seq().cmp(&b.queue_seq()))
            });
        if let Some((idx, _)) = arrived {
            return Some(idx);
        }
        // Nothing arrived: wake for the earliest future arrival.
        queue
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.arrival_s()
                    .total_cmp(&b.arrival_s())
                    .then(a.queue_seq().cmp(&b.queue_seq()))
            })
            .map(|(idx, _)| idx)
    }

    fn preempt_victim(&self, _running: &[RunningSeq], _grower: usize) -> Option<usize> {
        None
    }
}

/// FCFS admission plus evict-and-recompute preemption: when the pool runs
/// dry mid-decode, the youngest sequence (largest admission counter, the
/// vLLM recompute-preemption heuristic) is pushed back to the head of the
/// queue and its blocks are freed. On re-admission the engine charges a
/// full-context recompute through the
/// [`rkvc_gpu`](rkvc_gpu::DeploymentSpec::recompute) roofline model.
#[derive(Debug, Clone, Copy, Default)]
pub struct PreemptiveScheduler;

impl Scheduler for PreemptiveScheduler {
    fn label(&self) -> &'static str {
        "preemptive"
    }

    fn admit_pick(&self, queue: &VecDeque<Waiting>, _clock: SimClock) -> Option<usize> {
        if queue.is_empty() {
            None
        } else {
            Some(0)
        }
    }

    fn preempt_victim(&self, running: &[RunningSeq], _grower: usize) -> Option<usize> {
        let mut unfinished = 0usize;
        let mut youngest: Option<(usize, u64)> = None;
        for (idx, r) in running.iter().enumerate() {
            if r.is_finished() {
                continue;
            }
            unfinished += 1;
            let key = r.admit_seq();
            if youngest.map_or(true, |(_, best)| key > best) {
                youngest = Some((idx, key));
            }
        }
        // With at most one unfinished sequence there is nothing sensible to
        // evict (evicting the grower for itself would thrash), so run
        // capped like the seed.
        if unfinished < 2 {
            return None;
        }
        youngest.map(|(idx, _)| idx)
    }
}

/// Which scheduler a server runs — the serving-config knob threaded
/// through experiments, benches, and examples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerConfig {
    /// First-come-first-served, no preemption (seed-compatible oracle).
    #[default]
    Fcfs,
    /// Shortest-predicted-first admission via the router's length
    /// predictions.
    ShortestPredictedFirst,
    /// FCFS admission + evict-and-recompute the youngest sequence when the
    /// block pool runs dry.
    Preemptive,
}

impl SchedulerConfig {
    /// All schedulers in ablation order.
    pub fn all() -> [SchedulerConfig; 3] {
        [
            SchedulerConfig::Fcfs,
            SchedulerConfig::ShortestPredictedFirst,
            SchedulerConfig::Preemptive,
        ]
    }

    /// The policy object.
    pub fn policy(self) -> &'static dyn Scheduler {
        match self {
            SchedulerConfig::Fcfs => &FcfsScheduler,
            SchedulerConfig::ShortestPredictedFirst => &SpfScheduler,
            SchedulerConfig::Preemptive => &PreemptiveScheduler,
        }
    }

    /// Table/bench label.
    pub fn label(self) -> &'static str {
        self.policy().label()
    }

    /// Parses a CLI-style name (`fcfs`, `spf`, `preemptive`).
    pub fn parse(s: &str) -> Option<SchedulerConfig> {
        match s {
            "fcfs" => Some(SchedulerConfig::Fcfs),
            "spf" => Some(SchedulerConfig::ShortestPredictedFirst),
            "preemptive" => Some(SchedulerConfig::Preemptive),
            _ => None,
        }
    }
}

rkvc_tensor::json_unit_enum!(SchedulerConfig {
    Fcfs,
    ShortestPredictedFirst,
    Preemptive,
});

#[cfg(test)]
mod tests {
    use super::*;

    fn waiting(id: u64, arrival_s: f64, predicted_len: f64, queue_seq: u64) -> Waiting {
        Waiting {
            req: crate::SimRequest::new(id, arrival_s, 128, 32),
            predicted_len,
            generated: 0,
            ttft_s: None,
            queue_delay_s: None,
            preemptions: 0,
            queue_seq,
            spilled: false,
        }
    }

    #[test]
    fn fcfs_always_picks_the_head() {
        let q: VecDeque<Waiting> = vec![
            waiting(0, 0.0, 99.0, 0),
            waiting(1, 0.1, 1.0, 1),
        ]
        .into();
        assert_eq!(FcfsScheduler.admit_pick(&q, SimClock::from_secs(1.0)), Some(0));
        assert_eq!(FcfsScheduler.admit_pick(&VecDeque::new(), SimClock::ZERO), None);
    }

    #[test]
    fn spf_picks_shortest_arrived_then_earliest_future() {
        let q: VecDeque<Waiting> = vec![
            waiting(0, 0.0, 50.0, 0),
            waiting(1, 0.1, 10.0, 1),
            waiting(2, 5.0, 1.0, 2), // shortest but not yet arrived
        ]
        .into();
        assert_eq!(SpfScheduler.admit_pick(&q, SimClock::from_secs(1.0)), Some(1));
        // Before anything arrives: earliest arrival wins, not shortest.
        assert_eq!(SpfScheduler.admit_pick(&q, SimClock::from_secs(-1.0)), Some(0));
    }

    #[test]
    fn spf_breaks_prediction_ties_by_enqueue_order() {
        let q: VecDeque<Waiting> = vec![
            waiting(7, 0.0, 10.0, 4),
            waiting(3, 0.0, 10.0, 2),
        ]
        .into();
        // Equal predictions: lower queue_seq wins regardless of position.
        assert_eq!(SpfScheduler.admit_pick(&q, SimClock::from_secs(1.0)), Some(1));
    }

    #[test]
    fn scheduler_config_round_trips_labels() {
        for cfg in SchedulerConfig::all() {
            assert_eq!(SchedulerConfig::parse(cfg.label()), Some(cfg));
        }
        assert_eq!(SchedulerConfig::parse("nope"), None);
        assert_eq!(SchedulerConfig::default(), SchedulerConfig::Fcfs);
    }
}
