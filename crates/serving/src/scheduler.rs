//! Pluggable admission/preemption policies for the serving engine.
//!
//! A [`Scheduler`] makes exactly two decisions inside
//! [`ServerCore::iteration`](crate::engine): which queued request to try
//! admitting next, and — when the block pool runs dry mid-decode — which
//! running sequence to evict. Everything else (costing, block accounting,
//! event ordering) is shared engine code, so policies stay tiny and every
//! policy inherits the engine's bit-reproducibility: all tie-breaks go
//! through monotone counters, never iteration order of a map or float
//! equality.

use std::collections::VecDeque;

use crate::{RunningSeq, SimClock, SloPolicy, SloTargets, Waiting};

/// A scheduler's read-only view of a server queue, annotated with whether
/// the queue is known to be sorted ascending by arrival time (`total_cmp`
/// order). Event-driven and fleet dispatch deliver arrivals in global time
/// order, so the flag is almost always set — and then the arrival-gated
/// scans below touch only the *arrived prefix* instead of the whole queue
/// (which at fleet scale is dominated by not-yet-arrived requests). The
/// unsorted fallback reproduces the full scans bit-for-bit, so policies
/// behave identically either way.
#[derive(Debug, Clone, Copy)]
// rkvc-allow(C001): parameter type of the pub Scheduler trait; pluggable schedulers implement against it
pub struct QueueView<'a> {
    queue: &'a VecDeque<Waiting>,
    sorted: bool,
}

impl<'a> QueueView<'a> {
    /// Wraps a queue; `sorted` asserts ascending-arrival order.
    pub fn new(queue: &'a VecDeque<Waiting>, sorted: bool) -> Self {
        QueueView { queue, sorted }
    }

    /// Queue length.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The waiting entry at `idx`.
    pub fn get(&self, idx: usize) -> Option<&'a Waiting> {
        self.queue.get(idx)
    }

    /// All waiting entries with their queue indices.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &'a Waiting)> + '_ {
        self.queue.iter().enumerate()
    }

    /// End of the arrived prefix on a sorted queue (binary search over the
    /// deque — arrived entries form a prefix by the sort invariant).
    fn arrived_prefix(&self, clock: SimClock) -> usize {
        let mut lo = 0usize;
        let mut hi = self.queue.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if SimClock::from_secs(self.queue[mid].arrival_s()) <= clock {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Entries that have arrived by `clock`, with their queue indices —
    /// the admission candidates. Sublinear in queue depth on a sorted
    /// queue (only the arrived prefix is walked).
    pub fn arrived(&self, clock: SimClock) -> impl Iterator<Item = (usize, &'a Waiting)> + '_ {
        let end = if self.sorted {
            self.arrived_prefix(clock)
        } else {
            self.queue.len()
        };
        // On the sorted path the filter is a no-op safety net; unsorted it
        // does the actual gating, exactly as the pre-view full scan did.
        self.queue
            .iter()
            .enumerate()
            .take(end)
            .filter(move |(_, w)| SimClock::from_secs(w.arrival_s()) <= clock)
    }

    /// Index of the earliest future arrival (ties by enqueue order) — the
    /// idle wake-up fallback every non-FCFS policy shares so idle servers
    /// wake exactly like FCFS. O(ties-at-minimum) on a sorted queue.
    pub fn earliest_future(&self) -> Option<usize> {
        if self.sorted {
            let first = self.queue.front()?;
            let mut best_idx = 0usize;
            let mut best_seq = first.queue_seq();
            for (i, w) in self.queue.iter().enumerate().skip(1) {
                if w.arrival_s().total_cmp(&first.arrival_s()) != std::cmp::Ordering::Equal {
                    break;
                }
                if w.queue_seq() < best_seq {
                    best_idx = i;
                    best_seq = w.queue_seq();
                }
            }
            return Some(best_idx);
        }
        self.queue
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.arrival_s()
                    .total_cmp(&b.arrival_s())
                    .then(a.queue_seq().cmp(&b.queue_seq()))
            })
            .map(|(idx, _)| idx)
    }
}

/// An admission + preemption policy. Implementations must be determinstic
/// pure functions of their arguments — the engine calls them at
/// reproducible instants and expects reproducible answers.
pub trait Scheduler: std::fmt::Debug + Sync {
    /// Human-readable policy name (used in experiment tables and benches).
    fn label(&self) -> &'static str;

    /// Index into `queue` of the next request to try admitting, or `None`
    /// to stop admitting this iteration. The engine applies the arrival
    /// gate itself: a pick that has not yet arrived admits only on an idle
    /// server (which jumps its clock to the arrival). `slo` carries the
    /// server's per-class targets; SLO-blind policies ignore it.
    fn admit_pick(&self, queue: &QueueView<'_>, clock: SimClock, slo: &SloTargets)
        -> Option<usize>;

    /// Victim among `running` to evict when the pool runs dry while
    /// `grower` tries to append a token, or `None` to let `grower` run on
    /// at a capped KV footprint (the seed behaviour). Must not name a
    /// finished sequence (its blocks free at the end of the iteration
    /// anyway).
    fn preempt_victim(&self, running: &[RunningSeq], grower: usize) -> Option<usize>;
}

/// First-come-first-served: admit in arrival order, never preempt. This is
/// the seed lockstep simulator's policy, bit-compatible with it — the
/// oracle the engine refactor is verified against.
#[derive(Debug, Clone, Copy, Default)]
pub struct FcfsScheduler;

impl Scheduler for FcfsScheduler {
    fn label(&self) -> &'static str {
        "fcfs"
    }

    fn admit_pick(
        &self,
        queue: &QueueView<'_>,
        _clock: SimClock,
        _slo: &SloTargets,
    ) -> Option<usize> {
        if queue.is_empty() {
            None
        } else {
            Some(0)
        }
    }

    fn preempt_victim(&self, _running: &[RunningSeq], _grower: usize) -> Option<usize> {
        None
    }
}

/// Shortest-predicted-first: among requests that have already arrived,
/// admit the one the router's length predictor expects to finish soonest
/// (ties broken by enqueue order). With nothing arrived yet, falls back to
/// the earliest arrival so idle servers wake exactly like FCFS. Never
/// preempts.
///
/// Predictions flow in through the existing
/// [`RoutePredictor`](crate::RoutePredictor) seam: the cluster stamps each
/// request with `predicted_response_len` at routing time, so this policy
/// consumes `rkvc_core`'s length predictor without a new dependency.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpfScheduler;

impl Scheduler for SpfScheduler {
    fn label(&self) -> &'static str {
        "spf"
    }

    fn admit_pick(
        &self,
        queue: &QueueView<'_>,
        clock: SimClock,
        _slo: &SloTargets,
    ) -> Option<usize> {
        let arrived = queue.arrived(clock).min_by(|(_, a), (_, b)| {
            a.predicted_len()
                .total_cmp(&b.predicted_len())
                .then(a.queue_seq().cmp(&b.queue_seq()))
        });
        if let Some((idx, _)) = arrived {
            return Some(idx);
        }
        queue.earliest_future()
    }

    fn preempt_victim(&self, _running: &[RunningSeq], _grower: usize) -> Option<usize> {
        None
    }
}

/// Shared SLO-aware admission ordering: earliest-deadline-first with
/// *deadline restart*. Arrived requests are ordered by their effective
/// TTFT deadline — an Interactive arrival with a 2 s first-token budget
/// outranks a Batch job with hours of slack, regardless of arrival order
/// — breaking ties by predicted length and then enqueue order. A request
/// whose deadline has already passed cannot contribute goodput no matter
/// when it runs, so its priority is *restarted*: it competes as if it had
/// just arrived (effective deadline = now + class target). Naive EDF
/// collapses under overload because it serves the most-overdue (hopeless)
/// work first and starves the still-winnable; pushing blown work to the
/// back instead lets it rot behind slack-rich Batch admissions and blows
/// up the interactive tail. The restart rule sits between the two: blown
/// work degrades to class-priority order with shortest-first within the
/// class — never ahead of a feasible tighter deadline, never behind a
/// looser one.
fn slo_admit_pick(queue: &QueueView<'_>, clock: SimClock, slo: &SloTargets) -> Option<usize> {
    let eff_deadline = |w: &Waiting| {
        let deadline = slo.ttft_deadline(w.request().slo, w.arrival_s());
        if SimClock::from_secs(deadline) < clock {
            slo.ttft_deadline(w.request().slo, clock.secs())
        } else {
            deadline
        }
    };
    let arrived = queue.arrived(clock).min_by(|(_, a), (_, b)| {
        eff_deadline(a)
            .total_cmp(&eff_deadline(b))
            .then(a.predicted_len().total_cmp(&b.predicted_len()))
            .then(a.queue_seq().cmp(&b.queue_seq()))
    });
    if let Some((idx, _)) = arrived {
        return Some(idx);
    }
    queue.earliest_future()
}

/// Deadline-slack ("SLO-aware") shortest-predicted-first: admission is
/// the shared deadline-restart earliest-deadline-first ordering
/// ([`slo_admit_pick`]). Never preempts (the SLO-blind SPF contract).
#[derive(Debug, Clone, Copy, Default)]
pub struct SloSpfScheduler;

impl Scheduler for SloSpfScheduler {
    fn label(&self) -> &'static str {
        "spf+slo"
    }

    fn admit_pick(
        &self,
        queue: &QueueView<'_>,
        clock: SimClock,
        slo: &SloTargets,
    ) -> Option<usize> {
        slo_admit_pick(queue, clock, slo)
    }

    fn preempt_victim(&self, _running: &[RunningSeq], _grower: usize) -> Option<usize> {
        None
    }
}

/// FCFS admission plus evict-and-recompute preemption: when the pool runs
/// dry mid-decode, the youngest sequence (largest admission counter, the
/// vLLM recompute-preemption heuristic) is pushed back to the head of the
/// queue and its blocks are freed. On re-admission the engine charges a
/// full-context recompute through the
/// [`rkvc_gpu`](rkvc_gpu::DeploymentSpec::recompute) roofline model.
#[derive(Debug, Clone, Copy, Default)]
pub struct PreemptiveScheduler;

impl Scheduler for PreemptiveScheduler {
    fn label(&self) -> &'static str {
        "preemptive"
    }

    fn admit_pick(
        &self,
        queue: &QueueView<'_>,
        _clock: SimClock,
        _slo: &SloTargets,
    ) -> Option<usize> {
        if queue.is_empty() {
            None
        } else {
            Some(0)
        }
    }

    fn preempt_victim(&self, running: &[RunningSeq], _grower: usize) -> Option<usize> {
        let mut unfinished = 0usize;
        let mut youngest: Option<(usize, u64)> = None;
        for (idx, r) in running.iter().enumerate() {
            if r.is_finished() {
                continue;
            }
            unfinished += 1;
            let key = r.admit_seq();
            if youngest.map_or(true, |(_, best)| key > best) {
                youngest = Some((idx, key));
            }
        }
        // With at most one unfinished sequence there is nothing sensible to
        // evict (evicting the grower for itself would thrash), so run
        // capped like the seed.
        if unfinished < 2 {
            return None;
        }
        youngest.map(|(idx, _)| idx)
    }
}

/// SLO-aware preemptive scheduling: deadline-restart
/// earliest-TTFT-deadline admission ([`slo_admit_pick`] — an Interactive
/// arrival jumps the queue) and class-preferring victim selection — when the pool runs dry, evict the youngest *Batch*
/// sequence before touching Standard, and Standard before Interactive.
/// The recompute penalty lands on the traffic with the loosest deadline,
/// which is exactly the class that can absorb it without losing its SLO.
#[derive(Debug, Clone, Copy, Default)]
pub struct SloPreemptiveScheduler;

impl Scheduler for SloPreemptiveScheduler {
    fn label(&self) -> &'static str {
        "preemptive+slo"
    }

    fn admit_pick(
        &self,
        queue: &QueueView<'_>,
        clock: SimClock,
        slo: &SloTargets,
    ) -> Option<usize> {
        slo_admit_pick(queue, clock, slo)
    }

    fn preempt_victim(&self, running: &[RunningSeq], _grower: usize) -> Option<usize> {
        let mut unfinished = 0usize;
        // Maximal (class rank, admit_seq): most-sacrificable class first,
        // youngest within the class — deterministic because admit_seq is
        // unique.
        let mut victim: Option<(usize, (u8, u64))> = None;
        for (idx, r) in running.iter().enumerate() {
            if r.is_finished() {
                continue;
            }
            unfinished += 1;
            let key = (r.request().slo.victim_rank(), r.admit_seq());
            if victim.map_or(true, |(_, best)| key > best) {
                victim = Some((idx, key));
            }
        }
        if unfinished < 2 {
            return None;
        }
        victim.map(|(idx, _)| idx)
    }
}

/// Which scheduler a server runs — the serving-config knob threaded
/// through experiments, benches, and examples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerConfig {
    /// First-come-first-served, no preemption (seed-compatible oracle).
    #[default]
    Fcfs,
    /// Shortest-predicted-first admission via the router's length
    /// predictions.
    ShortestPredictedFirst,
    /// FCFS admission + evict-and-recompute the youngest sequence when the
    /// block pool runs dry.
    Preemptive,
}

impl SchedulerConfig {
    /// All schedulers in ablation order.
    pub fn all() -> [SchedulerConfig; 3] {
        [
            SchedulerConfig::Fcfs,
            SchedulerConfig::ShortestPredictedFirst,
            SchedulerConfig::Preemptive,
        ]
    }

    /// The policy object for the given SLO mode. FCFS is definitionally
    /// arrival-ordered, so it has no aware variant; the SLO-blind SPF and
    /// preemptive orderings are the bitwise oracles the aware variants
    /// are diffed against.
    pub fn policy(self, slo: SloPolicy) -> &'static dyn Scheduler {
        match (self, slo) {
            (SchedulerConfig::Fcfs, _) => &FcfsScheduler,
            (SchedulerConfig::ShortestPredictedFirst, SloPolicy::Blind) => &SpfScheduler,
            (SchedulerConfig::ShortestPredictedFirst, SloPolicy::Aware) => &SloSpfScheduler,
            (SchedulerConfig::Preemptive, SloPolicy::Blind) => &PreemptiveScheduler,
            (SchedulerConfig::Preemptive, SloPolicy::Aware) => &SloPreemptiveScheduler,
        }
    }

    /// Table/bench label (the scheduler family, independent of SLO mode).
    pub fn label(self) -> &'static str {
        self.policy(SloPolicy::Blind).label()
    }

    /// Parses a CLI-style name (`fcfs`, `spf`, `preemptive`).
    pub fn parse(s: &str) -> Option<SchedulerConfig> {
        match s {
            "fcfs" => Some(SchedulerConfig::Fcfs),
            "spf" => Some(SchedulerConfig::ShortestPredictedFirst),
            "preemptive" => Some(SchedulerConfig::Preemptive),
            _ => None,
        }
    }
}

rkvc_tensor::json_unit_enum!(SchedulerConfig {
    Fcfs,
    ShortestPredictedFirst,
    Preemptive,
});

#[cfg(test)]
mod tests {
    use super::*;

    fn waiting(id: u64, arrival_s: f64, predicted_len: f64, queue_seq: u64) -> Waiting {
        Waiting {
            req: crate::SimRequest::new(id, arrival_s, 128, 32),
            predicted_len,
            generated: 0,
            ttft_s: None,
            queue_delay_s: None,
            preemptions: 0,
            queue_seq,
            spilled: false,
        }
    }

    fn targets() -> SloTargets {
        SloTargets::default()
    }

    /// Unsorted-path view: exercises the full-scan fallback (the sorted
    /// fast path is checked for equivalence separately).
    fn view(q: &VecDeque<Waiting>) -> QueueView<'_> {
        QueueView::new(q, false)
    }

    #[test]
    fn fcfs_always_picks_the_head() {
        let q: VecDeque<Waiting> = vec![
            waiting(0, 0.0, 99.0, 0),
            waiting(1, 0.1, 1.0, 1),
        ]
        .into();
        let t = targets();
        assert_eq!(
            FcfsScheduler.admit_pick(&view(&q), SimClock::from_secs(1.0), &t),
            Some(0)
        );
        let empty = VecDeque::new();
        assert_eq!(
            FcfsScheduler.admit_pick(&view(&empty), SimClock::ZERO, &t),
            None
        );
    }

    #[test]
    fn spf_picks_shortest_arrived_then_earliest_future() {
        let q: VecDeque<Waiting> = vec![
            waiting(0, 0.0, 50.0, 0),
            waiting(1, 0.1, 10.0, 1),
            waiting(2, 5.0, 1.0, 2), // shortest but not yet arrived
        ]
        .into();
        let t = targets();
        assert_eq!(
            SpfScheduler.admit_pick(&view(&q), SimClock::from_secs(1.0), &t),
            Some(1)
        );
        // Before anything arrives: earliest arrival wins, not shortest.
        assert_eq!(
            SpfScheduler.admit_pick(&view(&q), SimClock::from_secs(-1.0), &t),
            Some(0)
        );
    }

    #[test]
    fn spf_breaks_prediction_ties_by_enqueue_order() {
        let q: VecDeque<Waiting> = vec![
            waiting(7, 0.0, 10.0, 4),
            waiting(3, 0.0, 10.0, 2),
        ]
        .into();
        // Equal predictions: lower queue_seq wins regardless of position.
        assert_eq!(
            SpfScheduler.admit_pick(&view(&q), SimClock::from_secs(1.0), &targets()),
            Some(1)
        );
    }

    #[test]
    fn sorted_view_matches_unsorted_scan_on_sorted_queues() {
        // The sorted fast path must be pick-identical to the full scan on
        // any arrival-ordered queue, at clocks that split the queue into
        // every possible arrived-prefix length (including ties at the
        // boundary and duplicate arrival times).
        let q: VecDeque<Waiting> = vec![
            waiting(0, 0.0, 50.0, 0),
            waiting(1, 0.5, 10.0, 1),
            waiting(2, 0.5, 10.0, 2), // duplicate arrival + prediction tie
            waiting(3, 2.0, 1.0, 3),
            waiting(4, 9.0, 5.0, 4),
        ]
        .into();
        let t = targets();
        for clock_s in [-1.0, 0.0, 0.25, 0.5, 1.0, 2.0, 5.0, 9.0, 20.0] {
            let clock = SimClock::from_secs(clock_s);
            let sorted = QueueView::new(&q, true);
            let unsorted = QueueView::new(&q, false);
            for sched in [
                &SpfScheduler as &dyn Scheduler,
                &SloSpfScheduler,
                &FcfsScheduler,
            ] {
                assert_eq!(
                    sched.admit_pick(&sorted, clock, &t),
                    sched.admit_pick(&unsorted, clock, &t),
                    "{} at clock {clock_s}",
                    sched.label()
                );
            }
            assert_eq!(sorted.earliest_future(), unsorted.earliest_future());
            let a: Vec<usize> = sorted.arrived(clock).map(|(i, _)| i).collect();
            let b: Vec<usize> = unsorted.arrived(clock).map(|(i, _)| i).collect();
            assert_eq!(a, b, "arrived sets diverge at clock {clock_s}");
        }
    }

    #[test]
    fn earliest_future_breaks_arrival_ties_by_queue_seq_when_sorted() {
        // A preempted entry (old queue_seq) re-queued at the front with the
        // same arrival as its neighbour: the sorted tie-scan must pick the
        // lower queue_seq exactly like the full scan.
        let q: VecDeque<Waiting> = vec![
            waiting(5, 1.0, 9.0, 7),
            waiting(6, 1.0, 9.0, 3),
            waiting(7, 4.0, 9.0, 8),
        ]
        .into();
        assert_eq!(QueueView::new(&q, true).earliest_future(), Some(1));
        assert_eq!(QueueView::new(&q, false).earliest_future(), Some(1));
    }

    fn waiting_class(
        id: u64,
        arrival_s: f64,
        predicted_len: f64,
        queue_seq: u64,
        class: crate::SloClass,
    ) -> Waiting {
        let mut w = waiting(id, arrival_s, predicted_len, queue_seq);
        w.req = w.req.with_slo(class);
        w
    }

    #[test]
    fn slo_spf_admits_by_ttft_deadline_not_length() {
        use crate::SloClass;
        // A long Interactive request vs. a short Batch job, both arrived.
        let q: VecDeque<Waiting> = vec![
            waiting_class(0, 0.0, 500.0, 0, SloClass::Interactive),
            waiting_class(1, 0.0, 1.0, 1, SloClass::Batch),
        ]
        .into();
        let t = targets();
        // Blind SPF chases the short job; aware SPF honours the deadline.
        assert_eq!(
            SpfScheduler.admit_pick(&view(&q), SimClock::from_secs(1.0), &t),
            Some(1)
        );
        assert_eq!(
            SloSpfScheduler.admit_pick(&view(&q), SimClock::from_secs(1.0), &t),
            Some(0)
        );
        // Idle fallback matches SPF: earliest future arrival.
        let future: VecDeque<Waiting> = vec![
            waiting_class(0, 5.0, 1.0, 0, SloClass::Interactive),
            waiting_class(1, 3.0, 9.0, 1, SloClass::Batch),
        ]
        .into();
        assert_eq!(
            SloSpfScheduler.admit_pick(&view(&future), SimClock::ZERO, &t),
            Some(1)
        );
    }

    #[test]
    fn slo_preemptive_evicts_batch_before_interactive() {
        use crate::SloClass;
        let running_seq = |id: u64, admit_seq: u64, class: SloClass| RunningSeq {
            req: crate::SimRequest::new(id, 0.0, 128, 32).with_slo(class),
            target_len: 32,
            generated: 1,
            kv_len: 129,
            ttft_s: 0.1,
            queue_delay_s: 0.0,
            predicted_len: 32.0,
            preemptions: 0,
            admit_seq,
            queue_seq: id,
        };
        let running = vec![
            running_seq(0, 0, SloClass::Interactive),
            running_seq(1, 1, SloClass::Batch),
            running_seq(2, 2, SloClass::Interactive), // youngest overall
        ];
        // Blind: youngest (admit_seq 2). Aware: the Batch sequence.
        assert_eq!(PreemptiveScheduler.preempt_victim(&running, 0), Some(2));
        assert_eq!(SloPreemptiveScheduler.preempt_victim(&running, 0), Some(1));
        // Single unfinished sequence: nobody preempts.
        assert_eq!(
            SloPreemptiveScheduler.preempt_victim(&running[..1], 0),
            None
        );
    }

    #[test]
    fn scheduler_config_round_trips_labels() {
        for cfg in SchedulerConfig::all() {
            assert_eq!(SchedulerConfig::parse(cfg.label()), Some(cfg));
        }
        assert_eq!(SchedulerConfig::parse("nope"), None);
        assert_eq!(SchedulerConfig::default(), SchedulerConfig::Fcfs);
        // Aware variants are distinct policies for SPF/preemptive, and the
        // same FCFS object either way.
        assert_eq!(
            SchedulerConfig::Fcfs.policy(SloPolicy::Aware).label(),
            "fcfs"
        );
        assert_eq!(
            SchedulerConfig::ShortestPredictedFirst
                .policy(SloPolicy::Aware)
                .label(),
            "spf+slo"
        );
        assert_eq!(
            SchedulerConfig::Preemptive.policy(SloPolicy::Aware).label(),
            "preemptive+slo"
        );
    }
}
