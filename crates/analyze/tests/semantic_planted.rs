//! Planted tests for the semantic layer: the `rkvc-safety` justification
//! convention inside the unsafe allowlist, the unsafe audit inventory,
//! and the C001 cross-crate dead-export lint over the use-graph.

use rkvc_analyze::lints::{analyze_source, crate_of};
use rkvc_analyze::usegraph::dead_exports;
use std::collections::{BTreeMap, BTreeSet};

const AT_HOME: &str = "crates/tensor/src/par.rs";

#[test]
fn unsafe_at_home_requires_an_adjacent_justification() {
    let src = concat!(
        "pub fn a(x: &[u8]) -> u8 {\n",               // 1
        "    // rkvc-safety: bounds checked by caller\n", // 2
        "    let v = unsafe { *x.as_ptr() };\n",      // 3: justified (block above)
        "    let w = unsafe { *x.as_ptr() }; // rkvc-safety: trailing form\n", // 4: justified
        "    let z = unsafe { *x.as_ptr() };\n",      // 5: NOT justified
        "    v + w + z\n",
        "}\n",
    );
    let a = analyze_source(AT_HOME, src);
    let u001: Vec<u32> = a
        .violations
        .iter()
        .filter(|v| v.lint == "U001")
        .map(|v| v.line)
        .collect();
    assert_eq!(u001, vec![5], "only the unjustified region may report");
    // All three regions land in the audit inventory, justified or not.
    let audit: Vec<(u32, Option<&str>)> = a
        .unsafe_audit
        .iter()
        .map(|u| (u.line, u.justification.as_deref()))
        .collect();
    assert_eq!(
        audit,
        vec![
            (3, Some("bounds checked by caller")),
            (4, Some("trailing form")),
            (5, None),
        ]
    );
}

#[test]
fn justification_chains_through_a_contiguous_comment_block() {
    let src = concat!(
        "pub fn a(x: &[u8]) -> u8 {\n",
        "    // rkvc-safety: reason sits two comment lines up\n",
        "    // and the explanation continues here\n",
        "    unsafe { *x.as_ptr() }\n",
        "}\n",
    );
    let a = analyze_source(AT_HOME, src);
    assert!(a.violations.iter().all(|v| v.lint != "U001"));
    assert_eq!(
        a.unsafe_audit[0].justification.as_deref(),
        Some("reason sits two comment lines up")
    );
    // A blank line breaks the chain: the justification no longer counts.
    let gapped = src.replace("up\n    //", "up\n\n    //");
    let b = analyze_source(AT_HOME, &gapped);
    assert!(b.violations.iter().any(|v| v.lint == "U001"));
}

#[test]
fn unsafe_outside_the_allowlist_reports_even_when_justified() {
    let src = concat!(
        "pub fn a(x: &[u8]) -> u8 {\n",
        "    // rkvc-safety: a justification does not move the allowlist\n",
        "    unsafe { *x.as_ptr() }\n",
        "}\n",
    );
    let a = analyze_source("crates/kvcache/src/cache.rs", src);
    assert!(
        a.violations
            .iter()
            .any(|v| v.lint == "U001" && v.line == 3 && v.message.contains("allowlist")),
        "got {:?}",
        a.violations.iter().map(|v| v.header()).collect::<Vec<_>>()
    );
}

/// Runs the use-graph over a tiny synthetic workspace: a defining crate
/// with one consumed and one dead export, plus a consumer crate.
fn synthetic_dead_exports(defs: &str, consumer: &str) -> Vec<(String, u32, bool)> {
    let def_path = "crates/kvcache/src/planted_api.rs";
    let use_path = "crates/serving/src/planted_use.rs";
    let analyses = vec![
        analyze_source(def_path, defs),
        analyze_source(use_path, consumer),
    ];
    let excerpts: BTreeMap<String, String> = vec![
        (def_path.to_owned(), defs.to_owned()),
        (use_path.to_owned(), consumer.to_owned()),
    ]
    .into_iter()
    .collect();
    dead_exports(&analyses, &[], &excerpts)
        .into_iter()
        .map(|v| (v.file, v.line, v.suppressed))
        .collect()
}

#[test]
fn c001_reports_the_dead_export_at_its_exact_line() {
    let defs = concat!(
        "pub fn planted_alive_xyz() -> u32 { 1 }\n", // 1: consumed below
        "pub fn planted_dead_xyz() -> u32 { 2 }\n",  // 2: dead
        "fn planted_private_xyz() -> u32 { 3 }\n",   // 3: private — out of scope
        "#[cfg(test)]\n",                            // 4
        "mod tests {\n",                             // 5
        "    pub fn planted_testonly_xyz() {}\n",    // 6: test-only — out of scope
        "}\n",
    );
    let consumer = "fn consume() -> u32 { rkvc_kvcache::planted_alive_xyz() }\n";
    let got = synthetic_dead_exports(defs, consumer);
    assert_eq!(
        got,
        vec![("crates/kvcache/src/planted_api.rs".to_owned(), 2, false)]
    );
}

#[test]
fn c001_respects_an_adjacent_suppression() {
    let defs = concat!(
        "// rkvc-allow(C001): kept for downstream users outside this workspace\n",
        "pub fn planted_dead_xyz() -> u32 { 2 }\n",
    );
    let got = synthetic_dead_exports(defs, "fn consume() {}\n");
    assert_eq!(
        got,
        vec![("crates/kvcache/src/planted_api.rs".to_owned(), 2, true)]
    );
}

#[test]
fn c001_keep_alive_channels() {
    // Doc-comment mentions anywhere keep an export alive (doc examples
    // compile as external consumers), and so do per-crate integration
    // tests fed in as the reference corpus.
    let defs = concat!(
        "pub fn planted_doc_kept_xyz() {}\n",
        "pub fn planted_test_kept_xyz() {}\n",
        "pub fn planted_dead_xyz() {}\n",
    );
    let consumer = "//! See `planted_doc_kept_xyz` for the slow path.\nfn consume() {}\n";
    let def_path = "crates/kvcache/src/planted_api.rs";
    let use_path = "crates/serving/src/planted_use.rs";
    let analyses = vec![
        analyze_source(def_path, defs),
        analyze_source(use_path, consumer),
    ];
    let excerpts: BTreeMap<String, String> =
        vec![(def_path.to_owned(), defs.to_owned())].into_iter().collect();
    let corpus_idents: BTreeSet<String> =
        vec!["planted_test_kept_xyz".to_owned()].into_iter().collect();
    let reference = vec![(crate_of("crates/kvcache/tests/api.rs"), corpus_idents)];
    let dead: Vec<u32> = dead_exports(&analyses, &reference, &excerpts)
        .into_iter()
        .map(|v| v.line)
        .collect();
    assert_eq!(dead, vec![3], "only the genuinely dead export reports");
}

#[test]
fn bin_targets_are_external_consumers_of_their_library() {
    // A crate's main.rs consumes the library's pub API as a separate
    // cargo crate, so an export referenced only there is *not* dead.
    let def_path = "crates/kvcache/src/planted_api.rs";
    let bin_path = "crates/kvcache/src/main.rs";
    let defs = "pub fn planted_bin_kept_xyz() {}\n";
    let bin = "fn main() { rkvc_kvcache::planted_bin_kept_xyz(); }\n";
    let analyses = vec![analyze_source(def_path, defs), analyze_source(bin_path, bin)];
    let excerpts: BTreeMap<String, String> =
        vec![(def_path.to_owned(), defs.to_owned())].into_iter().collect();
    assert!(dead_exports(&analyses, &[], &excerpts).is_empty());
}
