//! Seeded property tests: random concatenations of adversarial fragments
//! must lex soundly — literal counts match construction, comment markers
//! inside strings never produce comment tokens, and lexing is
//! deterministic.

use rkvc_analyze::lexer::{lex, Tok};

/// (source fragment, string literals, char literals, line comments).
/// Every fragment is self-delimiting, so any concatenation (joined by
/// spaces) is lexable and its expected counts are the per-fragment sums.
const FRAGMENTS: &[(&str, usize, usize, usize)] = &[
    ("plain_ident", 0, 0, 0),
    ("42.5f32", 0, 0, 0),
    ("\"plain // not a comment\"", 1, 0, 0),
    ("\"escaped \\\" quote /* x */\"", 1, 0, 0),
    ("r\"raw /* not a comment */\"", 1, 0, 0),
    ("r#\"// hash raw\"#", 1, 0, 0),
    ("r##\"has \"# inside\"##", 1, 0, 0),
    ("br#\"bytes // too\"#", 1, 0, 0),
    ("b\"byte str\"", 1, 0, 0),
    ("'x'", 0, 1, 0),
    ("'\\n'", 0, 1, 0),
    ("b'q'", 0, 1, 0),
    ("&'a str_ty", 0, 0, 0),
    ("/* block /* nested */ done */", 0, 0, 0),
    ("// trailing comment\n", 0, 0, 1),
];

rkvc_tensor::det_cases! {
    fn fragment_soup_lexes_with_exact_literal_counts(rng, cases = 200) {
        let n = rng.gen_range(1usize..12);
        let mut src = String::new();
        let (mut strs, mut chars, mut comments) = (0usize, 0usize, 0usize);
        for _ in 0..n {
            let &(frag, s, c, l) = rng.choose(FRAGMENTS);
            src.push_str(frag);
            src.push(' ');
            strs += s;
            chars += c;
            comments += l;
        }
        let toks = lex(&src).expect("fragment soup must lex");
        let count = |want: &Tok| toks.iter().filter(|t| &t.tok == want).count();
        assert_eq!(count(&Tok::StrLit), strs, "{src:?}");
        assert_eq!(count(&Tok::CharLit), chars, "{src:?}");
        let got_comments = toks
            .iter()
            .filter(|t| matches!(t.tok, Tok::LineComment(_)))
            .count();
        assert_eq!(got_comments, comments, "{src:?}");
    }

    fn lexing_is_deterministic(rng, cases = 50) {
        let n = rng.gen_range(1usize..20);
        let src: String = (0..n)
            .map(|_| rng.choose(FRAGMENTS).0)
            .collect::<Vec<_>>()
            .join("\n");
        assert_eq!(lex(&src), lex(&src));
    }
}
