// One planted violation per source lint id (D001, D002, D003, D004,
// E001, A001); H001 is manifest-level — see the inline manifests in
// planted_fixture.rs. This file is a test fixture: it is never compiled
// and never scanned by gate 0 (the analyzer only walks src trees).

use std::collections::HashMap;
use std::time::Instant;

pub fn planted() -> u128 {
    let t = Instant::now();
    let m: HashMap<u32, u32> = HashMap::new();
    let mut rng = thread_rng();
    let v = m.get(&0).copied().unwrap();
    // rkvc-allow(FAKE): not a real lint id
    // rkvc-allow(E001): fixture demonstrating a valid standalone suppression
    let w = m.get(&1).copied().expect("covered by the line above");
    let s = std::thread::scope(|_| v + w);
    let b = std::thread::Builder::new().spawn(move || s).is_ok();
    t.elapsed().as_nanos() + u128::from(s) + u128::from(b)
}

// Planted hits for the semantic lints (U001/U002/D005/D006), the D004
// import form, and the stacked-suppression chain at the bottom.
use std::{thread as planted_thread};

pub unsafe fn planted_unsafe(x: &[u8]) -> u32 {
    static mut PLANTED_COUNT: u32 = 0;
    let p = x.as_ptr() as *const u32;
    let v = unsafe { *p };
    let o = std::sync::atomic::Ordering::Relaxed;
    let t: u32 = unsafe { std::mem::transmute(1.0f32) };
    v + t + o as u32
}

pub fn planted_sums(values: &[f32]) -> f32 {
    let a = values.iter().sum::<f32>();
    let b = values.iter().fold(0.5f32, |acc, v| acc + v);
    // rkvc-allow(D002): stacked directive one — fixture for chained covers
    // rkvc-allow(E001): stacked directive two — chains past the directive above
    let c = std::collections::HashMap::<u32, u32>::new().get(&0).copied().unwrap();
    a + b + c as f32
}
