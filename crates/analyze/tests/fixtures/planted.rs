// One planted violation per source lint id (D001, D002, D003, D004,
// E001, A001); H001 is manifest-level — see the inline manifests in
// planted_fixture.rs. This file is a test fixture: it is never compiled
// and never scanned by gate 0 (the analyzer only walks src trees).

use std::collections::HashMap;
use std::time::Instant;

pub fn planted() -> u128 {
    let t = Instant::now();
    let m: HashMap<u32, u32> = HashMap::new();
    let mut rng = thread_rng();
    let v = m.get(&0).copied().unwrap();
    // rkvc-allow(FAKE): not a real lint id
    // rkvc-allow(E001): fixture demonstrating a valid standalone suppression
    let w = m.get(&1).copied().expect("covered by the line above");
    let s = std::thread::scope(|_| v + w);
    let b = std::thread::Builder::new().spawn(move || s).is_ok();
    t.elapsed().as_nanos() + u128::from(s) + u128::from(b)
}
