//! Golden test: the planted fixture must produce exactly one violation
//! per lint id, each at its exact `file:line`.

use rkvc_analyze::hermetic::{check_manifests, Manifest};
use rkvc_analyze::lints::scan_source;

const FIXTURE: &str = include_str!("fixtures/planted.rs");

/// The fixture path used for scanning: inside `crates/serving/src`, where
/// every source lint (D001/D002/D003/D004/E001) is in scope.
const AS_SERVING: &str = "crates/serving/src/planted.rs";

#[test]
fn planted_fixture_reports_every_lint_at_exact_lines() {
    let vs = scan_source(AS_SERVING, FIXTURE);
    let mut got: Vec<(u32, &str, bool)> =
        vs.iter().map(|v| (v.line, v.lint, v.suppressed)).collect();
    got.sort();
    assert_eq!(
        got,
        vec![
            (6, "D002", false),  // use ... HashMap
            (7, "D001", false),  // use ... Instant
            (10, "D001", false), // Instant::now()
            (11, "D002", false), // HashMap (type annotation)
            (11, "D002", false), // HashMap::new()
            (12, "D003", false), // thread_rng()
            (13, "E001", false), // .unwrap()
            (14, "A001", false), // rkvc-allow(FAKE)
            (16, "E001", true),  // .expect(..) under a valid suppression
            (17, "D004", false), // std::thread::scope(..)
            (18, "D004", false), // std::thread::Builder::new().spawn(..) — the pool's own idiom
            (24, "D004", false), // use std::{thread as ..} — the aliased import form
            (26, "U001", false), // pub unsafe fn outside the allowlist
            (27, "U002", false), // static mut
            (28, "U002", false), // as *const raw-pointer cast
            (29, "U001", false), // unsafe block
            (30, "D005", false), // Ordering::Relaxed
            (31, "U001", false), // unsafe block ..
            (31, "U002", false), // .. wrapping a transmute
            (36, "D006", false), // sum::<f32>()
            (37, "D006", false), // fold with a float seed
            (40, "D002", true),  // HashMap under the first stacked directive
            (40, "E001", true),  // unwrap under the second stacked directive
        ]
    );
}

#[test]
fn stacked_standalone_suppressions_chain_to_the_code_line() {
    // Two standalone directives above one code line: the first one's
    // cover must chain past the second (a comment-only line) instead of
    // dying on it — the regression this PR's satellite fixes.
    let vs = scan_source(AS_SERVING, FIXTURE);
    let at_40: Vec<_> = vs.iter().filter(|v| v.line == 40).collect();
    assert_eq!(at_40.len(), 2, "both planted hits on line 40 must report");
    assert!(
        at_40.iter().all(|v| v.suppressed),
        "both stacked directives must cover line 40, got {:?}",
        at_40.iter().map(|v| (&v.lint, v.suppressed)).collect::<Vec<_>>()
    );
    assert_eq!(
        at_40
            .iter()
            .find(|v| v.lint == "D002")
            .and_then(|v| v.reason.as_deref()),
        Some("stacked directive one — fixture for chained covers")
    );
}

#[test]
fn par_home_is_exempt_from_d004_but_nothing_else() {
    let vs = scan_source("crates/tensor/src/par.rs", FIXTURE);
    assert!(
        vs.iter().all(|v| v.lint != "D004"),
        "the pool module may use std::thread"
    );
    // Clock reads stay banned even in the pool module.
    assert!(vs.iter().any(|v| v.lint == "D001"));
}

/// The real persistent-pool source, scanned as shipped: its
/// `std::thread` internals (`Builder::new().spawn` for lazy workers,
/// `available_parallelism`, the scoped spawn retained as the bench
/// baseline) are exempt at their home path but D004 violations anywhere
/// else — and the job-handoff path must stay wall-clock-free, so the
/// home scan comes back completely clean (D001 included).
const PAR_SOURCE: &str = include_str!("../../tensor/src/par.rs");

#[test]
fn persistent_pool_source_is_clean_at_home_and_caught_elsewhere() {
    let home = scan_source("crates/tensor/src/par.rs", PAR_SOURCE);
    assert!(
        home.is_empty(),
        "pool source must scan clean in its home module, got {:?}",
        home.iter().map(|v| v.header()).collect::<Vec<_>>()
    );
    let moved = scan_source("crates/core/src/par.rs", PAR_SOURCE);
    let d004 = moved.iter().filter(|v| v.lint == "D004").count();
    assert!(
        d004 >= 3,
        "the pool's spawn sites must all trip D004 outside the home module, got {d004}"
    );
    // Outside its home the pool trips exactly the concurrency-boundary
    // lints: ad-hoc threading (D004), its unsafe regions (U001), the
    // transmute/raw-pointer machinery (U002), and its relaxed atomics
    // (D005). Anything else (a clock read, a hash map) would be a real
    // hygiene regression.
    assert!(
        moved
            .iter()
            .all(|v| matches!(v.lint, "D004" | "U001" | "U002" | "D005")),
        "unexpected lint outside the boundary set: {:?}",
        moved.iter().map(|v| v.header()).collect::<Vec<_>>()
    );
    for lint in ["U001", "U002", "D005"] {
        assert!(
            moved.iter().any(|v| v.lint == lint),
            "the pool's {lint} sites must all trip outside the home module"
        );
    }
}

#[test]
fn diagnostics_carry_exact_file_line_headers() {
    let vs = scan_source(AS_SERVING, FIXTURE);
    let d003 = vs.iter().find(|v| v.lint == "D003").expect("D003 planted");
    assert!(
        d003.header().starts_with("crates/serving/src/planted.rs:12: [D003]"),
        "got {:?}",
        d003.header()
    );
    assert_eq!(d003.excerpt, "let mut rng = thread_rng();");
    let suppressed = vs.iter().find(|v| v.suppressed).expect("one suppressed");
    assert_eq!(
        suppressed.reason.as_deref(),
        Some("fixture demonstrating a valid standalone suppression")
    );
}

#[test]
fn bench_scope_permits_wall_clock_but_not_hash_maps() {
    let vs = scan_source("crates/bench/src/planted.rs", FIXTURE);
    assert!(vs.iter().all(|v| v.lint != "D001"), "bench may read clocks");
    assert!(vs.iter().any(|v| v.lint == "D002"), "D002 still applies");
    assert!(vs.iter().any(|v| v.lint == "D004"), "benches must use the pool too");
    // E001 only covers kvcache/serving.
    assert!(vs.iter().all(|v| v.lint != "E001"));
}

#[test]
fn workspace_test_files_are_exempt_from_library_hygiene() {
    let vs = scan_source("tests/planted.rs", FIXTURE);
    assert!(vs
        .iter()
        .all(|v| v.lint != "D002" && v.lint != "E001" && v.lint != "D004"));
    // Clock reads and RNG bypasses stay banned even in tests.
    assert!(vs.iter().any(|v| v.lint == "D001"));
    assert!(vs.iter().any(|v| v.lint == "D003"));
    // Malformed suppressions are reported everywhere.
    assert!(vs.iter().any(|v| v.lint == "A001"));
}

#[test]
fn serving_engine_files_are_in_e001_scope() {
    // The engine refactor split `crates/serving/src` into new modules;
    // E001 (no `unwrap`/`expect`/`panic!` in serving library code) must
    // cover every one of them, not just the legacy file names.
    for path in [
        "crates/serving/src/engine.rs",
        "crates/serving/src/scheduler.rs",
        "crates/serving/src/clock.rs",
        "crates/serving/src/metrics.rs",
        "crates/serving/src/blocks.rs",
        "crates/serving/src/tier.rs",
        "crates/serving/src/slo.rs",
        "crates/serving/src/request.rs",
        "crates/serving/src/fleet.rs",
        "crates/serving/src/shard.rs",
        "crates/serving/src/scaling.rs",
    ] {
        let vs = scan_source(path, FIXTURE);
        assert!(
            vs.iter().any(|v| v.line == 13 && v.lint == "E001" && !v.suppressed),
            "{path}: the planted unwrap must trip E001"
        );
        assert!(
            vs.iter().any(|v| v.line == 6 && v.lint == "D002" && !v.suppressed),
            "{path}: the planted HashMap import must trip D002"
        );
    }
}

#[test]
fn session_workload_keeps_d002_but_not_e001() {
    // The session sampler lives in `crates/workload/src`, outside the
    // panic-free boundary: `.expect()` on distribution constructors is
    // idiomatic there, but the HashMap ban still applies in full.
    let vs = scan_source("crates/workload/src/session.rs", FIXTURE);
    assert!(
        vs.iter().all(|v| v.lint != "E001"),
        "workload sources may unwrap/expect"
    );
    assert!(
        vs.iter().any(|v| v.line == 6 && v.lint == "D002" && !v.suppressed),
        "the planted HashMap import must trip D002 in session.rs"
    );
    assert!(
        vs.iter().any(|v| v.line == 11 && v.lint == "D002" && !v.suppressed),
        "the planted HashMap annotation must trip D002 in session.rs"
    );
}

#[test]
fn planted_manifest_reports_h001_at_exact_lines() {
    let root = Manifest {
        path: "Cargo.toml".to_owned(),
        text: concat!(
            "[package]\n",                                       // 1
            "name = \"planted\"\n",                              // 2
            "\n",                                                // 3
            "[dependencies]\n",                                  // 4
            "planted-helper = { path = \"../helper\" }\n",       // 5: ok
            "serde = \"1.0\"\n",                                 // 6: registry pin
            "rand = { git = \"https://example.invalid/r\" }\n",  // 7: git source
            "mystery = { version = \"1\" }\n",                   // 8: no path
        )
        .to_owned(),
    };
    let helper = Manifest {
        path: "crates/helper/Cargo.toml".to_owned(),
        text: "[package]\nname = \"planted-helper\"\n".to_owned(),
    };
    let vs = check_manifests(&[root, helper]);
    assert!(vs.iter().all(|v| v.lint == "H001"));
    let mut lines: Vec<u32> = vs.iter().map(|v| v.line).collect();
    lines.sort_unstable();
    // Each bad dependency trips both the membership check and its source
    // check; the hermetic line 5 trips neither.
    assert_eq!(lines, vec![6, 6, 7, 7, 8, 8]);
    assert!(vs
        .iter()
        .any(|v| v.line == 6 && v.message.contains("registry version")));
    assert!(vs.iter().any(|v| v.line == 7 && v.message.contains("'git'")));
    assert!(vs
        .iter()
        .any(|v| v.line == 8 && v.message.contains("lacks 'path'")));
    assert!(vs
        .iter()
        .all(|v| v.file == "Cargo.toml"), "helper manifest is clean");
}
