//! Seeded property tests for the item-level parser: `parse` must be
//! total — no panic, no unbounded recursion — on arbitrary lexed token
//! streams, and deterministic.

use rkvc_analyze::lexer::{lex, test_mask};
use rkvc_analyze::parse::parse;

/// Syntax-shaped fragments, including deliberately broken ones: open
/// delimiters, orphan keywords, truncated items, deep nesting. Any
/// space-joined concatenation still lexes (each fragment is
/// self-delimiting at the token level), so the parser sees realistic
/// adversarial streams.
const FRAGMENTS: &[&str] = &[
    "pub fn f() {}",
    "pub fn",
    "fn orphan(",
    "struct S;",
    "pub struct {",
    "enum",
    "impl T for",
    "unsafe",
    "unsafe {",
    "unsafe impl Send for X {}",
    "use a::{b, c as d, e::*};",
    "use",
    "use a::{{{",
    "mod m {",
    "mod m { pub fn inner() {} }",
    "}",
    "} } }",
    "pub(crate) const K: u32 = 1;",
    "static mut G: u32 = 0;",
    "trait Tr { fn m(&self); }",
    "type T = fn(",
    "macro_rules! mac { () => {} }",
    "#[cfg(test)] mod tests { fn t() {} }",
    "# [ derive ( Debug ) ]",
    "extern \"C\" fn c() {}",
    "let x = y as *const u8;",
    "-> Vec<u8> { vec![1, 2] }",
    "'lifetime",
    "0.5f32 1_000 0x1f",
    "// a stray comment\n",
];

rkvc_tensor::det_cases! {
    fn parser_never_panics_on_fragment_soup(rng, cases = 300) {
        let n = rng.gen_range(1usize..24);
        let src: String = (0..n)
            .map(|_| *rng.choose(FRAGMENTS))
            .collect::<Vec<_>>()
            .join(" ");
        let Ok(tokens) = lex(&src) else { return };
        let in_test = test_mask(&tokens);
        // Totality is the property: any lexable stream parses to *some*
        // ParsedFile without panicking, and every recovered fact points
        // at a real token position.
        let parsed = parse(&tokens, &in_test);
        for (lo, hi) in &parsed.use_spans {
            assert!(lo <= hi && *hi <= tokens.len(), "{src:?}");
        }
        for item in &parsed.items {
            assert!(item.line >= 1, "{src:?}");
        }
        let mask = parsed.use_mask(tokens.len());
        assert_eq!(mask.len(), tokens.len());
    }

    fn parsing_is_deterministic(rng, cases = 60) {
        let n = rng.gen_range(1usize..16);
        let src: String = (0..n)
            .map(|_| *rng.choose(FRAGMENTS))
            .collect::<Vec<_>>()
            .join("\n");
        let Ok(tokens) = lex(&src) else { return };
        let in_test = test_mask(&tokens);
        let a = parse(&tokens, &in_test);
        let b = parse(&tokens, &in_test);
        assert_eq!(a.items.len(), b.items.len());
        assert_eq!(a.uses.len(), b.uses.len());
        assert_eq!(a.unsafes.len(), b.unsafes.len());
        assert_eq!(a.use_spans, b.use_spans);
    }
}
