//! Golden tests for the hand-written lexer: the constructs that make a
//! naive text scan unsound — raw strings holding comment markers, nested
//! block comments, lifetimes vs char literals — plus the suppression
//! grammar and `#[cfg(test)]` region tracking.

use rkvc_analyze::lexer::{lex, test_mask, Tok};
use rkvc_analyze::lints::scan_source;

fn kinds(src: &str) -> Vec<Tok> {
    lex(src).expect("fixture lexes").into_iter().map(|t| t.tok).collect()
}

#[test]
fn raw_string_hides_line_comment_markers() {
    let toks = kinds(r##"let s = r#"// not a comment"#;"##);
    assert_eq!(
        toks,
        vec![
            Tok::Ident("let".to_owned()),
            Tok::Ident("s".to_owned()),
            Tok::Punct('='),
            Tok::StrLit,
            Tok::Punct(';'),
        ]
    );
}

#[test]
fn raw_string_hash_counting_passes_inner_terminators() {
    // The `"#` inside must not close an `r##"…"##` string.
    let toks = kinds(r####"let s = r##"has "# inside"##;"####);
    assert_eq!(toks.iter().filter(|t| **t == Tok::StrLit).count(), 1);
    assert_eq!(*toks.last().unwrap(), Tok::Punct(';'));
    // Byte raw strings take the same path.
    let toks = kinds(r##"br#"bytes // too"#"##);
    assert_eq!(toks, vec![Tok::StrLit]);
}

#[test]
fn nested_block_comments_are_skipped_entirely() {
    let toks = kinds("/* outer /* inner */ still comment */ fn f() {}");
    assert_eq!(toks[0], Tok::Ident("fn".to_owned()));
    assert!(!toks.contains(&Tok::Ident("inner".to_owned())));
}

#[test]
fn unterminated_nested_block_comment_is_an_error() {
    // Depth 2 opened, only depth 1 closed.
    let err = lex("/* /* */").unwrap_err();
    assert_eq!(err.what, "block comment");
    assert_eq!(err.line, 1);
}

#[test]
fn lifetime_vs_char_literal() {
    let toks = kinds("fn f<'a>(x: &'a str) -> char { 'a' }");
    let lifetimes = toks
        .iter()
        .filter(|t| **t == Tok::Lifetime("a".to_owned()))
        .count();
    let chars = toks.iter().filter(|t| **t == Tok::CharLit).count();
    assert_eq!(lifetimes, 2, "<'a> and &'a are lifetimes");
    assert_eq!(chars, 1, "'a' is a char literal");
}

#[test]
fn escaped_and_byte_char_literals() {
    let toks = kinds(r"let a = b'x'; let b = '\n'; let c = '\u{1F600}';");
    assert_eq!(toks.iter().filter(|t| **t == Tok::CharLit).count(), 3);
}

#[test]
fn tokens_carry_one_based_lines() {
    let toks = lex("a\n\nb").unwrap();
    assert_eq!(toks[0].line, 1);
    assert_eq!(toks[1].line, 3);
}

#[test]
fn cfg_test_and_mod_tests_regions_are_masked() {
    let src = "fn prod() { x(); }\n\
               #[cfg(test)]\n\
               mod t { fn inner() { y(); } }\n\
               mod tests { fn z() {} }\n\
               fn prod2() {}";
    let toks = lex(src).unwrap();
    let mask = test_mask(&toks);
    let in_test = |name: &str| {
        let i = toks
            .iter()
            .position(|t| t.tok == Tok::Ident(name.to_owned()))
            .unwrap_or_else(|| panic!("{name} missing"));
        mask[i]
    };
    assert!(!in_test("x"), "production body");
    assert!(in_test("y"), "#[cfg(test)] mod body");
    assert!(in_test("z"), "bare `mod tests` body");
    assert!(!in_test("prod2"), "code after a test region");
}

#[test]
fn cfg_not_test_guards_production_code() {
    let src = "#[cfg(not(test))]\nfn prod() { x(); }";
    let toks = lex(src).unwrap();
    let mask = test_mask(&toks);
    assert!(mask.iter().all(|&m| !m), "cfg(not(test)) is production code");
}

// ---- Suppression grammar (via scan_source on a panic-free path) ----

const PANIC_FREE: &str = "crates/kvcache/src/snippet.rs";

#[test]
fn trailing_suppression_covers_its_own_line() {
    let src = "fn f(o: Option<u32>) -> u32 {\n    o.unwrap() // rkvc-allow(E001): caller validated\n}\n";
    let vs = scan_source(PANIC_FREE, src);
    assert_eq!(vs.len(), 1);
    assert!(vs[0].suppressed);
    assert_eq!(vs[0].reason.as_deref(), Some("caller validated"));
}

#[test]
fn standalone_suppression_covers_only_the_next_line() {
    let src = "fn f(o: Option<u32>) -> u32 {\n    // rkvc-allow(E001): only the next line\n    let a = o.unwrap();\n    a + o.unwrap()\n}\n";
    let vs = scan_source(PANIC_FREE, src);
    let suppressed: Vec<bool> = vs.iter().map(|v| v.suppressed).collect();
    assert_eq!(suppressed, vec![true, false], "line 4 is not covered");
}

#[test]
fn mismatched_lint_id_does_not_suppress() {
    let src = "// rkvc-allow(D001): wrong lint\nfn f(o: Option<u32>) -> u32 { o.unwrap() }\n";
    let vs = scan_source(PANIC_FREE, src);
    assert_eq!(vs.len(), 1);
    assert_eq!(vs[0].lint, "E001");
    assert!(!vs[0].suppressed);
}

#[test]
fn prose_mentions_of_the_directive_are_ignored() {
    let src = "//! Suppress via `rkvc-allow(E001): reason` comments.\nfn ok() {}\n";
    let vs = scan_source(PANIC_FREE, src);
    assert!(vs.is_empty(), "doc prose must not parse as a directive: {vs:?}");
}

#[test]
fn malformed_directives_are_a001_and_unsuppressable() {
    for (src, what) in [
        ("// rkvc-allow(E001) no colon\n", "missing ': reason'"),
        ("// rkvc-allow(E001):\n", "empty reason"),
        ("// rkvc-allow(QQQ1): unknown id\n", "unknown lint id"),
        ("// rkvc-allow E001: no parens\n", "missing '(LINT_ID)'"),
    ] {
        let vs = scan_source(PANIC_FREE, src);
        assert_eq!(vs.len(), 1, "{src:?}");
        assert_eq!(vs[0].lint, "A001", "{src:?}");
        assert!(vs[0].message.contains(what), "{src:?} -> {}", vs[0].message);
        assert!(!vs[0].suppressed);
    }
    // A001 cannot be silenced, even by a well-formed A001 suppression.
    let src = "// rkvc-allow(A001): trying to silence the meta-lint\n// rkvc-allow(BAD): malformed\nfn ok() {}\n";
    let vs = scan_source(PANIC_FREE, src);
    assert_eq!(vs.len(), 1);
    assert_eq!(vs[0].lint, "A001");
    assert!(!vs[0].suppressed, "A001 is never suppressable");
}
