//! Item-level parser on top of the [`crate::lexer`] token stream.
//!
//! The token-pattern lints (D001–D004, E001) only need to know what is
//! code and what is not; the semantic lints added for the unsafe audit
//! need *structure*: where `unsafe` regions sit and what kind they are
//! (U001/U002), which `use` declarations import what (the D004 import
//! form, the use-graph), and which module-level items a crate exports
//! (C001 dead-export detection). This module recovers exactly that much
//! structure — modules, item declarations with visibility, expanded
//! `use` trees, and classified `unsafe` regions — without building an
//! expression-level AST.
//!
//! The parser is **total**: it never panics, on any token stream the
//! lexer can produce. Unbalanced delimiters, truncated items, and
//! keyword soup degrade to *fewer recognized items*, never to a crash —
//! a property pinned by a seeded `det_cases!` fuzz test. Recursion into
//! nested modules and `use` groups is depth-bounded for the same reason.

use crate::lexer::{Tok, Token};

/// Maximum `mod` nesting the parser recurses into; deeper bodies are
/// skipped (their items are simply not collected).
const MAX_MOD_DEPTH: usize = 64;

/// Maximum `use`-tree brace nesting expanded; deeper groups are dropped.
const MAX_USE_DEPTH: usize = 32;

/// Item visibility, as written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visibility {
    /// Plain `pub` — exported from the crate (modulo module privacy).
    Pub,
    /// `pub(crate)`, `pub(super)`, `pub(in …)` — restricted.
    Restricted,
    /// No visibility keyword.
    Private,
}

/// The item kinds the symbol table records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// rkvc-allow(C001): field type of Item::kind; consumers match on parsed kinds via inference
pub enum ItemKind {
    /// `fn` (including `const fn` / `unsafe fn` / `extern fn`).
    Fn,
    /// `struct`.
    Struct,
    /// `enum`.
    Enum,
    /// `union`.
    Union,
    /// `trait`.
    Trait,
    /// `type` alias.
    TypeAlias,
    /// `const` item.
    Const,
    /// `static` item.
    Static,
    /// `mod` (inline or out-of-line).
    Mod,
    /// `macro_rules!` definition.
    Macro,
}

impl ItemKind {
    /// Lowercase keyword-ish label for diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            ItemKind::Fn => "fn",
            ItemKind::Struct => "struct",
            ItemKind::Enum => "enum",
            ItemKind::Union => "union",
            ItemKind::Trait => "trait",
            ItemKind::TypeAlias => "type",
            ItemKind::Const => "const",
            ItemKind::Static => "static",
            ItemKind::Mod => "mod",
            ItemKind::Macro => "macro",
        }
    }
}

/// One module-level item declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Item {
    /// What kind of declaration.
    pub kind: ItemKind,
    /// Declared name.
    pub name: String,
    /// Visibility as written.
    pub vis: Visibility,
    /// 1-based line of the declaring keyword.
    pub line: u32,
    /// `::`-joined module path within the file (empty at file root).
    pub module: String,
    /// Whether the declaration sits in test-only code.
    pub in_test: bool,
}

/// One `use` declaration, with its tree expanded to full paths.
#[derive(Debug, Clone, PartialEq, Eq)]
// rkvc-allow(C001): element type of ParsedFile::uses; consumers read use-decls via field access
pub struct UseDecl {
    /// 1-based line of the `use` keyword.
    pub line: u32,
    /// Expanded `::`-joined paths (aliases resolved to the source path,
    /// globs kept as a trailing `*` segment).
    pub paths: Vec<String>,
    /// Whether the declaration sits in test-only code.
    pub in_test: bool,
}

/// Classification of an `unsafe` region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// rkvc-allow(C001): field type of UnsafeRegion::kind; consumers read region kinds via inference
pub enum UnsafeKind {
    /// `unsafe { … }` block.
    Block,
    /// `unsafe fn`.
    Fn,
    /// `unsafe impl`.
    Impl,
    /// `unsafe trait`.
    Trait,
    /// `unsafe extern` block.
    Extern,
}

impl UnsafeKind {
    /// Label for diagnostics and the audit inventory.
    pub fn label(self) -> &'static str {
        match self {
            UnsafeKind::Block => "block",
            UnsafeKind::Fn => "fn",
            UnsafeKind::Impl => "impl",
            UnsafeKind::Trait => "trait",
            UnsafeKind::Extern => "extern",
        }
    }
}

/// One `unsafe` region, wherever it occurs (module level or inside a
/// function body).
#[derive(Debug, Clone, PartialEq, Eq)]
// rkvc-allow(C001): element type of ParsedFile::unsafes; consumers read regions via field access
pub struct UnsafeRegion {
    /// What follows the `unsafe` keyword.
    pub kind: UnsafeKind,
    /// 1-based line of the `unsafe` keyword.
    pub line: u32,
    /// Whether the region sits in test-only code.
    pub in_test: bool,
}

/// Everything the item-level parse recovers from one file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
// rkvc-allow(C001): return type of parse; consumers bind parses without naming the type
pub struct ParsedFile {
    /// Module-level item declarations, in source order.
    pub items: Vec<Item>,
    /// `use` declarations with expanded paths, in source order.
    pub uses: Vec<UseDecl>,
    /// Every `unsafe` region, in source order.
    pub unsafes: Vec<UnsafeRegion>,
    /// Token-index ranges `[start, end)` covered by `use` declarations;
    /// token-pattern lints use this to avoid double-reporting imports.
    pub use_spans: Vec<(usize, usize)>,
}

impl ParsedFile {
    /// A per-token mask of positions inside `use` declarations.
    pub fn use_mask(&self, n_tokens: usize) -> Vec<bool> {
        let mut mask = vec![false; n_tokens];
        for &(lo, hi) in &self.use_spans {
            for m in mask.iter_mut().take(hi.min(n_tokens)).skip(lo) {
                *m = true;
            }
        }
        mask
    }
}

/// Parses one file's token stream. `in_test` is the lexer's
/// [`crate::lexer::test_mask`] for the same tokens (any length mismatch
/// is treated as all-production).
pub fn parse(tokens: &[Token], in_test: &[bool]) -> ParsedFile {
    let mut out = ParsedFile::default();
    let test_at = |i: usize| in_test.get(i).copied().unwrap_or(false);
    collect_unsafes(tokens, &test_at, &mut out);
    parse_module(tokens, &test_at, 0, tokens.len(), "", 0, &mut out);
    out
}

fn ident_at<'t>(tokens: &'t [Token], i: usize) -> Option<&'t str> {
    match tokens.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(tokens: &[Token], i: usize, c: char) -> bool {
    tokens.get(i).map(|t| &t.tok) == Some(&Tok::Punct(c))
}

/// Index of the next non-comment token at or after `i`, bounded by `end`.
fn skip_comments(tokens: &[Token], mut i: usize, end: usize) -> usize {
    while i < end && matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::LineComment(_))) {
        i += 1;
    }
    i
}

/// Index one past the closer matching the opener at `open` (which must be
/// `open_c`), treating `open_c`/`close_c` as the delimiter pair. Returns
/// `end` when unbalanced.
fn match_delim(tokens: &[Token], open: usize, end: usize, open_c: char, close_c: char) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < end {
        if punct_at(tokens, i, open_c) {
            depth += 1;
        } else if punct_at(tokens, i, close_c) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    end
}

/// Flat pass: classify every `unsafe` keyword in the stream.
fn collect_unsafes(tokens: &[Token], test_at: &dyn Fn(usize) -> bool, out: &mut ParsedFile) {
    for i in 0..tokens.len() {
        if ident_at(tokens, i) != Some("unsafe") {
            continue;
        }
        let j = skip_comments(tokens, i + 1, tokens.len());
        let kind = match tokens.get(j).map(|t| &t.tok) {
            Some(Tok::Ident(id)) => match id.as_str() {
                "fn" => UnsafeKind::Fn,
                "impl" => UnsafeKind::Impl,
                "trait" => UnsafeKind::Trait,
                "extern" => UnsafeKind::Extern,
                _ => UnsafeKind::Block,
            },
            _ => UnsafeKind::Block,
        };
        out.unsafes.push(UnsafeRegion {
            kind,
            line: tokens[i].line,
            in_test: test_at(i),
        });
    }
}

/// Parses the item sequence in `tokens[i..end]` under module path
/// `module`, recursing into inline `mod` bodies.
#[allow(clippy::too_many_arguments)]
fn parse_module(
    tokens: &[Token],
    test_at: &dyn Fn(usize) -> bool,
    mut i: usize,
    end: usize,
    module: &str,
    depth: usize,
    out: &mut ParsedFile,
) {
    while i < end {
        // Comments and stray punctuation never start an item.
        let start = skip_comments(tokens, i, end);
        if start >= end {
            return;
        }
        i = start;
        // Attributes: `#` `[` … `]` (also `#![…]`).
        if punct_at(tokens, i, '#') {
            let mut j = i + 1;
            if punct_at(tokens, j, '!') {
                j += 1;
            }
            if punct_at(tokens, j, '[') {
                i = match_delim(tokens, j, end, '[', ']');
                continue;
            }
            i += 1;
            continue;
        }
        // Visibility prefix.
        let item_start = i;
        let mut vis = Visibility::Private;
        if ident_at(tokens, i) == Some("pub") {
            vis = Visibility::Pub;
            i += 1;
            if punct_at(tokens, i, '(') {
                vis = Visibility::Restricted;
                i = match_delim(tokens, i, end, '(', ')');
            }
        }
        // Item-qualifier keywords that may precede the defining keyword.
        while matches!(
            ident_at(tokens, i),
            Some("default" | "async" | "unsafe")
        ) || (ident_at(tokens, i) == Some("const")
            && matches!(ident_at(tokens, i + 1), Some("fn" | "unsafe" | "async" | "extern")))
        {
            i += 1;
        }
        if ident_at(tokens, i) == Some("extern") && matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::StrLit)) {
            // `extern "C" fn` qualifier (an `extern "C" { … }` block is
            // handled below by the brace skip).
            if matches!(ident_at(tokens, i + 2), Some("fn")) {
                i += 2;
            }
        }
        let Some(kw) = ident_at(tokens, i) else {
            // Punctuation / literal at item position: skip it. A stray
            // `{ … }` is skipped as a whole so statement blocks inside
            // macro fixtures don't get mined for items.
            if punct_at(tokens, i, '{') {
                i = match_delim(tokens, i, end, '{', '}');
            } else {
                i += 1;
            }
            continue;
        };
        let line = tokens[i].line;
        let in_test = test_at(i);
        match kw {
            "use" => {
                let semi = find_semi(tokens, i + 1, end);
                let paths = expand_use(tokens, i + 1, semi, MAX_USE_DEPTH);
                out.uses.push(UseDecl { line, paths, in_test });
                out.use_spans.push((item_start, (semi + 1).min(end)));
                i = semi + 1;
            }
            "mod" => {
                let name = ident_at(tokens, i + 1).unwrap_or("").to_owned();
                push_item(out, ItemKind::Mod, &name, vis, line, module, in_test);
                let j = skip_comments(tokens, i + 2, end);
                if punct_at(tokens, j, '{') {
                    let body_end = match_delim(tokens, j, end, '{', '}');
                    if depth < MAX_MOD_DEPTH {
                        let sub = join_module(module, &name);
                        parse_module(
                            tokens,
                            test_at,
                            j + 1,
                            body_end.saturating_sub(1),
                            &sub,
                            depth + 1,
                            out,
                        );
                    }
                    i = body_end;
                } else {
                    i = j + 1; // `mod name;`
                }
            }
            "fn" => {
                let name = ident_at(tokens, i + 1).unwrap_or("").to_owned();
                push_item(out, ItemKind::Fn, &name, vis, line, module, in_test);
                i = skip_to_body_or_semi(tokens, i + 2, end);
            }
            "struct" | "enum" | "union" | "trait" => {
                let kind = match kw {
                    "struct" => ItemKind::Struct,
                    "enum" => ItemKind::Enum,
                    "union" => ItemKind::Union,
                    _ => ItemKind::Trait,
                };
                let name = ident_at(tokens, i + 1).unwrap_or("").to_owned();
                push_item(out, kind, &name, vis, line, module, in_test);
                i = skip_to_body_or_semi(tokens, i + 2, end);
            }
            "type" => {
                let name = ident_at(tokens, i + 1).unwrap_or("").to_owned();
                push_item(out, ItemKind::TypeAlias, &name, vis, line, module, in_test);
                i = find_semi(tokens, i + 1, end) + 1;
            }
            "const" | "static" => {
                let kind = if kw == "const" { ItemKind::Const } else { ItemKind::Static };
                let mut j = i + 1;
                if ident_at(tokens, j) == Some("mut") {
                    j += 1;
                }
                // `const _: () = …;` uses `_` which lexes as an ident.
                let name = ident_at(tokens, j).unwrap_or("").to_owned();
                push_item(out, kind, &name, vis, line, module, in_test);
                i = find_semi(tokens, j, end) + 1;
            }
            "impl" => {
                // Skip the whole impl body; method-level items are out of
                // scope for the module symbol table.
                i = skip_to_body_or_semi(tokens, i + 1, end);
            }
            "extern" => {
                // `extern "C" { … }` or `extern crate x;`.
                i = skip_to_body_or_semi(tokens, i + 1, end);
            }
            "macro_rules" => {
                let mut j = i + 1;
                if punct_at(tokens, j, '!') {
                    j += 1;
                }
                let name = ident_at(tokens, j).unwrap_or("").to_owned();
                push_item(out, ItemKind::Macro, &name, vis, line, module, in_test);
                i = skip_to_body_or_semi(tokens, j + 1, end);
            }
            _ => {
                // Expression keyword or stray ident at item position
                // (macro fixture, truncated input): advance one token.
                i += 1;
            }
        }
        // Guarantee progress even against adversarial inputs.
        if i <= start {
            i = start + 1;
        }
    }
}

fn push_item(
    out: &mut ParsedFile,
    kind: ItemKind,
    name: &str,
    vis: Visibility,
    line: u32,
    module: &str,
    in_test: bool,
) {
    if name.is_empty() {
        return; // Truncated declaration; nothing to record.
    }
    out.items.push(Item {
        kind,
        name: name.to_owned(),
        vis,
        line,
        module: module.to_owned(),
        in_test,
    });
}

fn join_module(module: &str, name: &str) -> String {
    if module.is_empty() {
        name.to_owned()
    } else {
        format!("{module}::{name}")
    }
}

/// Index of the `;` terminating a declaration (skipping over any bracket
/// groups), or `end - 1`-ish fallback when truncated.
fn find_semi(tokens: &[Token], mut i: usize, end: usize) -> usize {
    while i < end {
        if punct_at(tokens, i, ';') {
            return i;
        }
        if punct_at(tokens, i, '{') {
            i = match_delim(tokens, i, end, '{', '}');
            continue;
        }
        if punct_at(tokens, i, '(') {
            i = match_delim(tokens, i, end, '(', ')');
            continue;
        }
        if punct_at(tokens, i, '[') {
            i = match_delim(tokens, i, end, '[', ']');
            continue;
        }
        i += 1;
    }
    end.saturating_sub(1)
}

/// Advances past an item tail: through the matching `}` of its first
/// body brace, or past a terminating `;`, whichever comes first.
fn skip_to_body_or_semi(tokens: &[Token], mut i: usize, end: usize) -> usize {
    while i < end {
        if punct_at(tokens, i, '{') {
            return match_delim(tokens, i, end, '{', '}');
        }
        if punct_at(tokens, i, ';') {
            return i + 1;
        }
        if punct_at(tokens, i, '(') {
            i = match_delim(tokens, i, end, '(', ')');
            continue;
        }
        i += 1;
    }
    end
}

/// Expands the use tree in `tokens[i..end]` (the span between `use` and
/// its `;`) into full `::`-joined paths. `as` aliases resolve to the
/// source path; groups multiply the prefix; `*` stays a literal segment.
fn expand_use(tokens: &[Token], i: usize, end: usize, depth: usize) -> Vec<String> {
    let mut paths = Vec::new();
    expand_use_into(tokens, i, end, "", depth, &mut paths);
    paths
}

fn expand_use_into(
    tokens: &[Token],
    mut i: usize,
    end: usize,
    prefix: &str,
    depth: usize,
    out: &mut Vec<String>,
) {
    if depth == 0 {
        return;
    }
    let mut path = prefix.to_owned();
    while i < end {
        i = skip_comments(tokens, i, end);
        if i >= end {
            break;
        }
        match &tokens[i].tok {
            Tok::Ident(seg) if seg == "as" => {
                // Alias: the bound name is local; the source path is what
                // the graph cares about. Skip the alias ident.
                i += 2;
            }
            Tok::Ident(seg) => {
                if !path.is_empty() {
                    path.push_str("::");
                }
                path.push_str(seg);
                i += 1;
            }
            Tok::Punct('*') => {
                if !path.is_empty() {
                    path.push_str("::");
                }
                path.push('*');
                i += 1;
            }
            Tok::Punct(':') => {
                i += 1; // Path separator halves; just skip.
            }
            Tok::Punct('{') => {
                let group_end = match_delim(tokens, i, end, '{', '}');
                // Split the group body on top-level commas.
                let body_lo = i + 1;
                let body_hi = group_end.saturating_sub(1);
                let mut part_lo = body_lo;
                let mut j = body_lo;
                let mut nest = 0usize;
                while j < body_hi {
                    if punct_at(tokens, j, '{') {
                        nest += 1;
                    } else if punct_at(tokens, j, '}') {
                        nest = nest.saturating_sub(1);
                    } else if punct_at(tokens, j, ',') && nest == 0 {
                        expand_use_into(tokens, part_lo, j, &path, depth - 1, out);
                        part_lo = j + 1;
                    }
                    j += 1;
                }
                if part_lo < body_hi {
                    expand_use_into(tokens, part_lo, body_hi, &path, depth - 1, out);
                }
                // A group ends the path on this branch.
                return;
            }
            _ => {
                i += 1;
            }
        }
    }
    if path != prefix || prefix.is_empty() {
        if !path.is_empty() {
            out.push(path);
        }
    } else {
        // `self` re-exports of the prefix (`use a::b::{self, c}`) land
        // here only via the ident arm, so an unchanged path means the
        // branch was empty — record nothing.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, test_mask};

    fn parse_src(src: &str) -> ParsedFile {
        let tokens = lex(src).expect("test source lexes");
        let mask = test_mask(&tokens);
        parse(&tokens, &mask)
    }

    #[test]
    fn collects_module_level_items_with_visibility() {
        let src = "pub fn a() {}\n\
                   fn b() {}\n\
                   pub(crate) struct C { x: u32 }\n\
                   pub enum E { V }\n\
                   pub const K: u32 = 1;\n\
                   pub static S: u32 = 2;\n\
                   pub type T = u32;\n\
                   pub trait Tr { fn m(&self); }\n\
                   mod inner { pub fn nested() {} }\n";
        let p = parse_src(src);
        let find = |name: &str| p.items.iter().find(|it| it.name == name).unwrap();
        assert_eq!(find("a").vis, Visibility::Pub);
        assert_eq!(find("a").kind, ItemKind::Fn);
        assert_eq!(find("b").vis, Visibility::Private);
        assert_eq!(find("C").vis, Visibility::Restricted);
        assert_eq!(find("E").kind, ItemKind::Enum);
        assert_eq!(find("K").kind, ItemKind::Const);
        assert_eq!(find("S").kind, ItemKind::Static);
        assert_eq!(find("T").kind, ItemKind::TypeAlias);
        assert_eq!(find("Tr").kind, ItemKind::Trait);
        assert_eq!(find("nested").module, "inner");
        // Trait methods are not module-level items.
        assert!(p.items.iter().all(|it| it.name != "m"));
    }

    #[test]
    fn qualified_fns_and_impl_bodies() {
        let src = "pub const fn cf() -> u32 { 0 }\n\
                   pub unsafe fn uf() {}\n\
                   impl Foo { pub fn method(&self) {} }\n";
        let p = parse_src(src);
        assert!(p.items.iter().any(|i| i.name == "cf" && i.kind == ItemKind::Fn));
        assert!(p.items.iter().any(|i| i.name == "uf" && i.kind == ItemKind::Fn));
        // Methods inside impl blocks are not collected.
        assert!(p.items.iter().all(|i| i.name != "method"));
    }

    #[test]
    fn use_trees_expand_groups_aliases_and_globs() {
        let src = "use std::thread;\n\
                   use std::{thread::spawn as go, io};\n\
                   use crate::lexer::*;\n";
        let p = parse_src(src);
        assert_eq!(p.uses.len(), 3);
        assert_eq!(p.uses[0].paths, vec!["std::thread"]);
        assert_eq!(p.uses[1].paths, vec!["std::thread::spawn", "std::io"]);
        assert_eq!(p.uses[2].paths, vec!["crate::lexer::*"]);
        // Every token of every declaration is covered by a use span.
        let toks = lex(src).unwrap();
        let mask = p.use_mask(toks.len());
        assert!(mask.iter().all(|&m| m), "{mask:?}");
    }

    #[test]
    fn unsafe_regions_are_classified() {
        let src = "unsafe impl Send for X {}\n\
                   unsafe fn danger() { unsafe { core() } }\n\
                   unsafe trait T {}\n";
        let p = parse_src(src);
        let kinds: Vec<UnsafeKind> = p.unsafes.iter().map(|u| u.kind).collect();
        assert_eq!(
            kinds,
            vec![UnsafeKind::Impl, UnsafeKind::Fn, UnsafeKind::Block, UnsafeKind::Trait]
        );
        assert_eq!(p.unsafes[0].line, 1);
        assert_eq!(p.unsafes[2].line, 2);
    }

    #[test]
    fn test_regions_are_flagged() {
        let src = "pub fn prod() {}\n\
                   #[cfg(test)]\n\
                   mod tests { pub fn helper() { unsafe { x() } } }\n";
        let p = parse_src(src);
        let prod = p.items.iter().find(|i| i.name == "prod").unwrap();
        assert!(!prod.in_test);
        let helper = p.items.iter().find(|i| i.name == "helper").unwrap();
        assert!(helper.in_test);
        assert!(p.unsafes[0].in_test);
    }

    #[test]
    fn truncated_and_unbalanced_input_degrades_gracefully() {
        for src in [
            "pub fn",
            "pub struct {",
            "use std::{thread",
            "mod a { mod b { fn c(",
            "unsafe",
            "impl",
            "pub",
            "const",
            "{ { { (",
        ] {
            let _ = parse_src(src); // Must not panic.
        }
    }
}
