//! C001 — the workspace use-graph and the dead-`pub`-export lint.
//!
//! The per-file scan ([`crate::lints`]) records, for every file, the
//! module-level items it defines (with visibility) and the set of
//! identifiers occurring in its code and doc comments. This module joins
//! those facts across files: a `pub` item defined in some crate's
//! library source is **dead** when no file *outside* that crate — other
//! crates' sources, integration tests, examples, the root facade, or any
//! doc example anywhere — mentions its name.
//!
//! Matching is by bare identifier presence, deliberately permissive: any
//! occurrence of the name anywhere outside the defining crate keeps the
//! export alive, so renames and re-exports never produce false
//! positives. What survives that filter really is unreachable from every
//! external consumer in the tree.
//!
//! Suppressions are file-local as for every other lint: a
//! `// rkvc-allow(C001): reason` adjacent to the definition covers it.

use crate::lints::{self, FileAnalysis, Suppression, Violation};
use crate::parse::{ItemKind, Visibility};
use std::collections::{BTreeMap, BTreeSet};

/// Identifier sets visible from one consumer location, keyed by crate.
#[derive(Debug, Default)]
struct CrateRefs {
    /// Idents appearing in code, per crate name (from [`lints::crate_of`]).
    code: BTreeMap<String, BTreeSet<String>>,
    /// Idents appearing in doc comments anywhere — doc examples compile
    /// as external consumers, so these keep exports alive globally.
    docs: BTreeSet<String>,
}

/// Finds dead `pub` exports across the workspace.
///
/// `analyses` are the lint-scanned source files; `reference_idents` is
/// the identifier corpus from files that are consumers but not lint
/// targets (per-crate `tests/` directories), each tagged with the crate
/// it exercises. Returned violations already have the defining file's
/// suppressions applied and carry excerpts from `excerpts` (path →
/// source text).
pub fn dead_exports(
    analyses: &[FileAnalysis],
    reference_idents: &[(String, BTreeSet<String>)],
    excerpts: &BTreeMap<String, String>,
) -> Vec<Violation> {
    let mut refs = CrateRefs::default();
    for a in analyses {
        // A crate's bin targets are distinct cargo crates that consume
        // the library's pub API via `rkvc_<name>::…` paths, so they are
        // external consumers for C001 purposes.
        let krate = if a.path.ends_with("/main.rs") || a.path.contains("/bin/") {
            format!("{}-bin", lints::crate_of(&a.path))
        } else {
            lints::crate_of(&a.path)
        };
        refs.code.entry(krate).or_default().extend(a.idents.iter().cloned());
        refs.docs.extend(a.doc_idents.iter().cloned());
    }
    for (krate, idents) in reference_idents {
        // A crate's own `tests/` directory is an external consumer of its
        // pub API (it links against the built library), so its idents go
        // into the shared `tests` pseudo-crate rather than the crate
        // itself — `crates/<k>/tests` keeping `<k>`'s exports alive is
        // exactly the point.
        let _ = krate;
        refs.code.entry("tests".to_owned()).or_default().extend(idents.iter().cloned());
    }

    let alive = |def_crate: &str, name: &str| -> bool {
        if refs.docs.contains(name) {
            return true;
        }
        refs.code
            .iter()
            .any(|(krate, idents)| krate != def_crate && idents.contains(name))
    };

    let mut out = Vec::new();
    for a in analyses {
        // Only library sources define an export surface; binaries and
        // test/example code are consumers.
        if !a.path.starts_with("crates/") || !a.path.contains("/src/") {
            continue;
        }
        if a.path.ends_with("/main.rs") || a.path.contains("/bin/") {
            continue;
        }
        let def_crate = lints::crate_of(&a.path);
        let lines: Vec<&str> = excerpts
            .get(&a.path)
            .map(|s| s.lines().collect())
            .unwrap_or_default();
        let mut file_hits = Vec::new();
        for item in &a.parsed.items {
            if item.vis != Visibility::Pub || item.in_test {
                continue;
            }
            // Modules are namespaces, not leaf exports; macro_rules
            // visibility is attribute-driven and outside the parser's
            // scope.
            if matches!(item.kind, ItemKind::Mod | ItemKind::Macro) {
                continue;
            }
            if alive(&def_crate, &item.name) {
                continue;
            }
            file_hits.push(Violation {
                lint: "C001",
                file: a.path.clone(),
                line: item.line,
                message: format!(
                    "dead `pub` export: {} `{}` is never referenced outside crate `{}` \
                     (sources, tests, examples, or doc examples); demote to pub(crate), \
                     remove, or justify",
                    item.kind.label(),
                    item.name,
                    def_crate
                ),
                excerpt: lines
                    .get(item.line as usize - 1)
                    .map(|l| l.trim().to_owned())
                    .unwrap_or_default(),
                suppressed: false,
                reason: None,
            });
        }
        let sups: Vec<Suppression> = a.suppressions.clone();
        lints::apply_suppressions(&mut file_hits, &sups);
        out.extend(file_hits);
    }
    out
}
