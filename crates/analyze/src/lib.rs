//! `rkvc-analyze` — the workspace's standing static-analysis gate.
//!
//! The repository's claim to reproducing *Rethinking KV Cache
//! Compression* rests on results being a pure function of the source
//! tree. The hermetic build (PR 1) removed external crates; this tool
//! keeps the tree that way *and* mechanically enforces the determinism
//! and hygiene invariants the golden `results/` files depend on:
//!
//! - [`lints`] — the catalog (D001 wall-clock, D002 unordered maps, D003
//!   RNG bypass, D004 ad-hoc threading outside `rkvc_tensor::par`, E001
//!   panics in serving-path crates, A001 malformed suppressions) and the
//!   per-file scanner.
//! - [`lexer`] — the hand-written Rust lexer behind it: nested block
//!   comments, raw strings, char-vs-lifetime disambiguation, and
//!   `#[cfg(test)]` / `mod tests` region tracking.
//! - [`hermetic`] — H001, the manifest-level dependency-closure check
//!   (the portable re-implementation of gate 1's `cargo tree | awk`).
//! - [`report`] — `file:line` diagnostics plus the machine-readable
//!   report written to `results/analyze.json`.
//!
//! The binary (`cargo run -p rkvc-analyze`) runs as **gate 0** of
//! `./scripts/check_hermetic.sh` and exits non-zero on any unsuppressed
//! violation. Violations are suppressed only by
//! `// rkvc-allow(LINT_ID): reason` with a written reason.

pub mod hermetic;
pub mod lexer;
pub mod lints;
pub mod report;

use lints::Violation;
use report::Report;
use std::path::{Path, PathBuf};

/// The source roots the scanner walks, relative to the workspace root.
/// `crates/*/src` is expanded by [`scan_workspace`].
pub const EXTRA_ROOTS: [&str; 3] = ["src", "tests", "examples"];

/// Recursively collects `.rs` files under `dir`, sorted for deterministic
/// reports. Missing directories contribute nothing.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Every Rust file the lints cover: `crates/*/src/**`, `src/**`,
/// `tests/**`, `examples/**` — sorted, workspace-relative.
pub fn source_files(root: &Path) -> Vec<PathBuf> {
    let mut dirs: Vec<PathBuf> = Vec::new();
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        let mut crates: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        crates.sort();
        for c in crates {
            dirs.push(c.join("src"));
        }
    }
    dirs.extend(EXTRA_ROOTS.iter().map(|r| root.join(r)));
    let mut files = Vec::new();
    for d in dirs {
        collect_rs(&d, &mut files);
    }
    files
}

/// Runs every lint over the workspace at `root`.
///
/// # Errors
///
/// Returns a message if a source file or manifest cannot be read.
pub fn scan_workspace(root: &Path) -> Result<Report, String> {
    let files = source_files(root);
    let mut violations: Vec<Violation> = Vec::new();
    for path in &files {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        violations.extend(lints::scan_source(&rel, &text));
    }
    let manifests = hermetic::load_manifests(root)?;
    violations.extend(hermetic::check_manifests(&manifests));
    Ok(Report::new(files.len(), manifests.len(), violations))
}
