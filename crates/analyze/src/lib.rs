//! `rkvc-analyze` — the workspace's standing static-analysis gate.
//!
//! The repository's claim to reproducing *Rethinking KV Cache
//! Compression* rests on results being a pure function of the source
//! tree. The hermetic build (PR 1) removed external crates; this tool
//! keeps the tree that way *and* mechanically enforces the determinism,
//! safety, and hygiene invariants the golden `results/` files depend on:
//!
//! - [`lints`] — the catalog (D001 wall-clock, D002 unordered maps, D003
//!   RNG bypass, D004 ad-hoc threading, D005 relaxed atomics, D006
//!   order-dependent float accumulation, E001 panics in serving-path
//!   crates, U001/U002 `unsafe` audit, A001 malformed suppressions) and
//!   the per-file scanner.
//! - [`lexer`] — the hand-written Rust lexer behind it: nested block
//!   comments, raw strings, char-vs-lifetime disambiguation, and
//!   `#[cfg(test)]` / `mod tests` region tracking.
//! - [`parse`] — the total, never-panicking item-level parser on top of
//!   the lexer: modules, fns, impls, `use` trees, visibility, `unsafe`
//!   regions.
//! - [`usegraph`] — C001, cross-crate dead-`pub`-export detection over
//!   the workspace symbol table joined from every file's parse.
//! - [`hermetic`] — H001, the manifest-level dependency-closure check
//!   (the portable re-implementation of gate 1's `cargo tree | awk`).
//! - [`report`] — `file:line` diagnostics plus the machine-readable
//!   report written to `results/analyze.json`: per-crate metrics, the
//!   `unsafe` audit inventory, and the full suppression inventory with
//!   reasons.
//!
//! The per-file scan fans out over the deterministic
//! [`rkvc_tensor::par`] pool; because files map to placement-ordered
//! slots, the report is byte-identical at any `RKVC_THREADS` (gate 0
//! diffs width 1 against width 4 to prove it).
//!
//! The binary (`cargo run -p rkvc-analyze`) runs as **gate 0** of
//! `./scripts/check_hermetic.sh` and exits non-zero on any unsuppressed
//! violation. Violations are suppressed only by
//! `// rkvc-allow(LINT_ID): reason` with a written reason; `unsafe`
//! regions are justified with `// rkvc-safety: reason`.

pub mod hermetic;
pub mod lexer;
pub mod lints;
pub mod parse;
pub mod report;
pub mod usegraph;

use lints::FileAnalysis;
use report::Report;
use rkvc_tensor::par;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// The source roots the scanner walks, relative to the workspace root.
/// `crates/*/src` is expanded by [`scan_workspace`].
pub(crate) const EXTRA_ROOTS: [&str; 3] = ["src", "tests", "examples"];

/// Recursively collects `.rs` files under `dir`, sorted for deterministic
/// reports. Missing directories contribute nothing.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Every Rust file the lints cover: `crates/*/src/**`, `src/**`,
/// `tests/**`, `examples/**` — sorted, workspace-relative.
pub(crate) fn source_files(root: &Path) -> Vec<PathBuf> {
    let mut dirs: Vec<PathBuf> = Vec::new();
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        let mut crates: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        crates.sort();
        for c in crates {
            dirs.push(c.join("src"));
        }
    }
    dirs.extend(EXTRA_ROOTS.iter().map(|r| root.join(r)));
    let mut files = Vec::new();
    for d in dirs {
        collect_rs(&d, &mut files);
    }
    files
}

/// Per-crate integration-test and bench directories
/// (`crates/*/tests/**`, `crates/*/benches/**`). These are *consumers*
/// for the C001 use-graph — each is a separate cargo crate linking
/// against the built library — but not lint targets (tests may contain
/// planted fixtures; benches are covered by D001's bench exemption
/// anyway).
fn reference_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        let mut crates: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        crates.sort();
        for c in crates {
            collect_rs(&c.join("tests"), &mut files);
            collect_rs(&c.join("benches"), &mut files);
        }
    }
    files
}

/// Bare identifiers in a source text, lexer-backed when the file lexes
/// and a conservative word split otherwise.
fn idents_of(src: &str) -> BTreeSet<String> {
    if let Ok(tokens) = lexer::lex(src) {
        return tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                lexer::Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect();
    }
    src.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .filter(|w| w.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_'))
        .map(str::to_owned)
        .collect()
}

/// Runs every lint over the workspace at `root`.
///
/// The per-file pass fans out over the deterministic
/// [`rkvc_tensor::par`] pool; files land in placement-ordered slots, so
/// the assembled report is byte-identical at any `RKVC_THREADS`.
///
/// # Errors
///
/// Returns a message if a source file or manifest cannot be read.
pub fn scan_workspace(root: &Path) -> Result<Report, String> {
    let files = source_files(root);
    // I/O stays sequential (and fallible); the pure analysis fans out.
    let mut inputs: Vec<(String, String)> = Vec::with_capacity(files.len());
    for path in &files {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        inputs.push((rel, text));
    }
    // Lexing + parsing + linting one file is far past the dispatch
    // threshold; treat each as ~200k ops so small workspaces still
    // engage the pool deterministically.
    let grain = par::grain_for(inputs.len(), 200_000);
    let analyses: Vec<FileAnalysis> =
        par::par_map(&inputs, grain, |(rel, text)| lints::analyze_source(rel, text));

    // Cross-file pass: the C001 use-graph, with per-crate `tests/`
    // directories joined in as reference-only consumers.
    let mut reference_idents: Vec<(String, BTreeSet<String>)> = Vec::new();
    for path in reference_files(root) {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        reference_idents.push((lints::crate_of(&rel), idents_of(&text)));
    }
    let excerpts: BTreeMap<String, String> =
        inputs.iter().map(|(rel, text)| (rel.clone(), text.clone())).collect();
    let mut violations: Vec<lints::Violation> =
        analyses.iter().flat_map(|a| a.violations.clone()).collect();
    violations.extend(usegraph::dead_exports(&analyses, &reference_idents, &excerpts));

    let manifests = hermetic::load_manifests(root)?;
    violations.extend(hermetic::check_manifests(&manifests));
    Ok(Report::new(manifests.len(), &analyses, violations))
}
