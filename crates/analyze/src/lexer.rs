//! Hand-written Rust surface lexer for the lint engine.
//!
//! The lint catalog only needs a token stream that is *faithful about what
//! is code and what is not*: identifiers inside string literals, comments,
//! or doc examples must never trigger a lint, `'a` must lex as a lifetime
//! while `'a'` lexes as a character literal, and `/* /* */ */` must nest.
//! This module provides exactly that — a lossy but sound tokenizer that
//! keeps identifiers, punctuation, literals, and line comments (the
//! carrier for `rkvc-allow` suppressions), each tagged with its 1-based
//! source line.
//!
//! It deliberately does **not** build an AST: the lints are token-pattern
//! checks plus a region tracker (see [`test_mask`]) that marks
//! `#[cfg(test)]` items and `mod tests { .. }` bodies so test-only code is
//! exempt from the library-hygiene lints.

/// A lexed token's payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Lifetime or loop label (`'a`, `'static`), without the quote.
    Lifetime(String),
    /// Character or byte literal (`'x'`, `'\n'`, `b'0'`).
    CharLit,
    /// String literal of any flavor: `"…"`, `r#"…"#`, `b"…"`, `br"…"`.
    StrLit,
    /// Numeric literal, carrying its raw text (`42`, `0.5f32`, `1_000`)
    /// so downstream lints can distinguish float from integer shapes.
    NumLit(String),
    /// Single punctuation character (`{`, `}`, `#`, `!`, `:`, …).
    Punct(char),
    /// Line comment text (everything after `//`, including doc comments).
    LineComment(String),
}

/// A token plus its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Payload.
    pub tok: Tok,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// Lexing failure (unterminated comment/string), with its line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// What was left open.
    pub what: &'static str,
    /// 1-based line where the construct started.
    pub line: u32,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unterminated {} starting on line {}", self.what, self.line)
    }
}

impl std::error::Error for LexError {}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Tokenizes Rust source.
///
/// # Errors
///
/// Returns [`LexError`] on an unterminated block comment, string, or
/// character literal — anything else lexes (unknown characters become
/// [`Tok::Punct`]).
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut lx = Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
    };
    let mut out = Vec::new();
    while let Some(c) = lx.peek(0) {
        let line = lx.line;
        match c {
            c if c.is_whitespace() => {
                lx.bump();
            }
            '/' if lx.peek(1) == Some('/') => {
                lx.bump();
                lx.bump();
                let mut text = String::new();
                while let Some(c) = lx.peek(0) {
                    if c == '\n' {
                        break;
                    }
                    text.push(c);
                    lx.bump();
                }
                out.push(Token {
                    tok: Tok::LineComment(text),
                    line,
                });
            }
            '/' if lx.peek(1) == Some('*') => {
                lx.bump();
                lx.bump();
                let mut depth = 1u32;
                loop {
                    match (lx.peek(0), lx.peek(1)) {
                        (Some('/'), Some('*')) => {
                            lx.bump();
                            lx.bump();
                            depth += 1;
                        }
                        (Some('*'), Some('/')) => {
                            lx.bump();
                            lx.bump();
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        (Some(_), _) => {
                            lx.bump();
                        }
                        (None, _) => {
                            return Err(LexError {
                                what: "block comment",
                                line,
                            })
                        }
                    }
                }
            }
            '\'' => {
                lex_quote(&mut lx, &mut out, line)?;
            }
            '"' => {
                lex_string(&mut lx, line)?;
                out.push(Token {
                    tok: Tok::StrLit,
                    line,
                });
            }
            c if is_ident_start(c) => {
                let mut ident = String::new();
                while let Some(c) = lx.peek(0) {
                    if is_ident_continue(c) {
                        ident.push(c);
                        lx.bump();
                    } else {
                        break;
                    }
                }
                // String-literal prefixes: r"", r#""#, b"", br#""#, c"",
                // cr#""#, plus byte chars b'x'.
                let next = lx.peek(0);
                let raw_capable = matches!(ident.as_str(), "r" | "br" | "cr");
                let plain_capable = matches!(ident.as_str(), "b" | "c");
                if raw_capable && matches!(next, Some('"') | Some('#')) {
                    if lex_raw_string(&mut lx, line)? {
                        out.push(Token {
                            tok: Tok::StrLit,
                            line,
                        });
                        continue;
                    }
                    // Not actually a raw string (e.g. `r #[...]` cannot
                    // occur, but `br#` in macros could): fall through.
                    out.push(Token {
                        tok: Tok::Ident(ident),
                        line,
                    });
                    continue;
                }
                if plain_capable && next == Some('"') {
                    lex_string(&mut lx, line)?;
                    out.push(Token {
                        tok: Tok::StrLit,
                        line,
                    });
                    continue;
                }
                if ident == "b" && next == Some('\'') {
                    lex_quote(&mut lx, &mut out, line)?;
                    continue;
                }
                out.push(Token {
                    tok: Tok::Ident(ident),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                // Digits, type suffixes, hex/underscores; one optional
                // fraction part. `0..10` stops before the range dots.
                let mut text = String::new();
                text.push(lx.bump().unwrap_or(c));
                while let Some(c) = lx.peek(0) {
                    if is_ident_continue(c) {
                        text.push(c);
                        lx.bump();
                    } else if c == '.'
                        && lx.peek(1).map_or(false, |d| d.is_ascii_digit())
                    {
                        text.push(c);
                        lx.bump();
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    tok: Tok::NumLit(text),
                    line,
                });
            }
            other => {
                lx.bump();
                out.push(Token {
                    tok: Tok::Punct(other),
                    line,
                });
            }
        }
    }
    Ok(out)
}

/// Lexes from a `'`: either a char literal or a lifetime/label.
fn lex_quote(lx: &mut Lexer, out: &mut Vec<Token>, line: u32) -> Result<(), LexError> {
    lx.bump(); // the opening '
    match lx.peek(0) {
        Some('\\') => {
            // Escaped char literal: skip the escape, then scan to the
            // closing quote (covers '\u{1F600}').
            lx.bump();
            lx.bump();
            loop {
                match lx.bump() {
                    Some('\'') => break,
                    Some(_) => {}
                    None => {
                        return Err(LexError {
                            what: "character literal",
                            line,
                        })
                    }
                }
            }
            out.push(Token {
                tok: Tok::CharLit,
                line,
            });
        }
        Some(c) if lx.peek(1) == Some('\'') => {
            // 'x' — a one-scalar char literal. ''' (c == '\'') also lands
            // here and is invalid Rust; treat as a char literal anyway.
            let _ = c;
            lx.bump();
            lx.bump();
            out.push(Token {
                tok: Tok::CharLit,
                line,
            });
        }
        Some(c) if is_ident_start(c) => {
            // Lifetime or loop label: 'a, 'static, '_.
            let mut name = String::new();
            while let Some(c) = lx.peek(0) {
                if is_ident_continue(c) {
                    name.push(c);
                    lx.bump();
                } else {
                    break;
                }
            }
            out.push(Token {
                tok: Tok::Lifetime(name),
                line,
            });
        }
        Some(_) => {
            // Some other single char then no closing quote — emit as punct
            // to stay lossless-ish; real Rust never reaches this.
            out.push(Token {
                tok: Tok::Punct('\''),
                line,
            });
        }
        None => {
            return Err(LexError {
                what: "character literal",
                line,
            })
        }
    }
    Ok(())
}

/// Lexes a `"…"` body (cursor on the opening quote), honoring `\` escapes.
fn lex_string(lx: &mut Lexer, line: u32) -> Result<(), LexError> {
    lx.bump(); // opening "
    loop {
        match lx.bump() {
            Some('"') => return Ok(()),
            Some('\\') => {
                lx.bump();
            }
            Some(_) => {}
            None => {
                return Err(LexError {
                    what: "string literal",
                    line,
                })
            }
        }
    }
}

/// Lexes a raw string body (cursor on `#` or `"` after the `r`/`br`/`cr`
/// prefix). Returns `false` without consuming if it isn't one (a lone `#`
/// not followed by `"`).
fn lex_raw_string(lx: &mut Lexer, line: u32) -> Result<bool, LexError> {
    let mut hashes = 0usize;
    while lx.peek(hashes) == Some('#') {
        hashes += 1;
    }
    if lx.peek(hashes) != Some('"') {
        return Ok(false);
    }
    for _ in 0..=hashes {
        lx.bump(); // the #s and the opening "
    }
    // Scan for `"` followed by `hashes` #s.
    loop {
        match lx.bump() {
            Some('"') => {
                let mut matched = 0usize;
                while matched < hashes && lx.peek(0) == Some('#') {
                    lx.bump();
                    matched += 1;
                }
                if matched == hashes {
                    return Ok(true);
                }
            }
            Some(_) => {}
            None => {
                return Err(LexError {
                    what: "raw string literal",
                    line,
                })
            }
        }
    }
}

/// Marks which tokens sit in test-only code.
///
/// A token is test code when it is inside the braces of an item annotated
/// `#[cfg(test)]` (attributes stacked above it included), or inside a
/// `mod tests { … }` body. Attribute arguments are bracket-matched, so
/// `#[cfg(all(test, unix))]` is recognized too.
pub fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        // `#[…]` attribute: scan its contents for a `test` ident.
        if tokens[i].tok == Tok::Punct('#')
            && tokens.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct('['))
        {
            let (attr_end, has_test) = scan_attribute(tokens, i + 1);
            if has_test {
                mark_item(tokens, &mut mask, attr_end);
            }
            i = attr_end;
            continue;
        }
        // `mod tests {` without an attribute.
        if tokens[i].tok == Tok::Ident("mod".to_owned())
            && tokens.get(i + 1).map(|t| &t.tok) == Some(&Tok::Ident("tests".to_owned()))
            && tokens.get(i + 2).map(|t| &t.tok) == Some(&Tok::Punct('{'))
        {
            let end = match_brace(tokens, i + 2);
            for m in mask.iter_mut().take(end).skip(i) {
                *m = true;
            }
            i = end;
            continue;
        }
        i += 1;
    }
    mask
}

/// Scans `[…]` starting at the `[` index; returns (index past `]`, whether
/// a bare `test` ident occurs inside).
fn scan_attribute(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut has_test = false;
    let mut negated = false;
    let mut i = open;
    while i < tokens.len() {
        match tokens[i].tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    // `cfg(not(test))` guards *production* code.
                    return (i + 1, has_test && !negated);
                }
            }
            Tok::Ident(ref id) if id == "test" => has_test = true,
            Tok::Ident(ref id) if id == "not" => negated = true,
            _ => {}
        }
        i += 1;
    }
    (tokens.len(), has_test && !negated)
}

/// Marks the item starting at `start` (after its attributes) as test code:
/// everything through the matching `}` of its first brace, or through a
/// terminating `;` if one comes first (e.g. `#[cfg(test)] use x;`).
fn mark_item(tokens: &[Token], mask: &mut [bool], start: usize) {
    let mut i = start;
    // Skip stacked attributes between the cfg(test) and the item.
    while i < tokens.len()
        && tokens[i].tok == Tok::Punct('#')
        && tokens.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct('['))
    {
        let (end, _) = scan_attribute(tokens, i + 1);
        i = end;
    }
    let mut j = i;
    while j < tokens.len() {
        match tokens[j].tok {
            Tok::Punct('{') => {
                let end = match_brace(tokens, j);
                for m in mask.iter_mut().take(end).skip(start) {
                    *m = true;
                }
                return;
            }
            Tok::Punct(';') => {
                for m in mask.iter_mut().take(j + 1).skip(start) {
                    *m = true;
                }
                return;
            }
            _ => j += 1,
        }
    }
}

/// Index one past the `}` matching the `{` at `open`.
fn match_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        match tokens[i].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    tokens.len()
}
