//! Tier-1 gate 0: scan the workspace, print diagnostics, persist
//! `results/analyze.json`, and exit non-zero on unsuppressed violations.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    // The binary lives at crates/analyze; the workspace root is two up.
    // Running from a checkout via `cargo run -p rkvc-analyze` therefore
    // needs no arguments; an explicit root can be passed for testing.
    let root = match std::env::args_os().nth(1) {
        Some(p) => PathBuf::from(p),
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
    };
    let report = match rkvc_analyze::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("rkvc-analyze: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.render_human());

    let results_dir = root.join("results");
    let json_path = results_dir.join("analyze.json");
    let body = report.to_json().to_pretty_string() + "\n";
    if let Err(e) = std::fs::create_dir_all(&results_dir)
        .and_then(|()| std::fs::write(&json_path, body))
    {
        eprintln!("rkvc-analyze: writing {}: {e}", json_path.display());
        return ExitCode::FAILURE;
    }

    if report.unsuppressed().next().is_some() {
        eprintln!("rkvc-analyze: FAILED — fix the findings above or add `// rkvc-allow(LINT_ID): reason`");
        ExitCode::FAILURE
    } else {
        println!("rkvc-analyze: clean");
        ExitCode::SUCCESS
    }
}
