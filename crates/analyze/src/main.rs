//! Tier-1 gate 0: scan the workspace, print diagnostics, persist
//! `results/analyze.json` (or `--out <path>`), and exit non-zero on
//! unsuppressed violations.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    // The binary lives at crates/analyze; the workspace root is two up.
    // Running from a checkout via `cargo run -p rkvc-analyze` therefore
    // needs no arguments; an explicit root can be passed for testing,
    // and `--out <path>` redirects the JSON report (gate 0 uses it to
    // byte-diff scans at different RKVC_THREADS widths).
    let mut root: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut args = std::env::args_os().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--out" {
            match args.next() {
                Some(p) => out = Some(PathBuf::from(p)),
                None => {
                    eprintln!("rkvc-analyze: --out requires a path");
                    return ExitCode::FAILURE;
                }
            }
        } else if root.is_none() {
            root = Some(PathBuf::from(arg));
        } else {
            eprintln!("rkvc-analyze: usage: rkvc-analyze [root] [--out path]");
            return ExitCode::FAILURE;
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."));

    let report = match rkvc_analyze::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("rkvc-analyze: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.render_human());

    let json_path = out.unwrap_or_else(|| root.join("results").join("analyze.json"));
    let body = report.to_json().to_pretty_string() + "\n";
    let write = json_path
        .parent()
        .map_or(Ok(()), std::fs::create_dir_all)
        .and_then(|()| std::fs::write(&json_path, body));
    if let Err(e) = write {
        eprintln!("rkvc-analyze: writing {}: {e}", json_path.display());
        return ExitCode::FAILURE;
    }

    if report.unsuppressed().next().is_some() {
        eprintln!("rkvc-analyze: FAILED — fix the findings above or add `// rkvc-allow(LINT_ID): reason`");
        ExitCode::FAILURE
    } else {
        println!("rkvc-analyze: clean");
        ExitCode::SUCCESS
    }
}
