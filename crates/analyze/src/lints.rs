//! The lint catalog and the per-file scan.
//!
//! | ID   | Invariant |
//! |------|-----------|
//! | D001 | No wall-clock reads (`Instant`, `SystemTime`, `UNIX_EPOCH`) outside `crates/bench` — experiment outputs must be a pure function of the source tree. |
//! | D002 | No `HashMap`/`HashSet` in non-test code — hash iteration order leaks into reports; use `BTreeMap`/`BTreeSet` or sort before emission. |
//! | D003 | No RNG construction outside `rkvc_tensor::det`/`rng`: no external RNG crates anywhere, and no `SeededRng::new`/`splitmix64` in non-test code outside `crates/tensor/src` (call `rkvc_tensor::seeded_rng`). |
//! | D004 | No ad-hoc threading (`std::thread`, `thread::spawn`/`scope`/`Builder`) outside `crates/tensor/src/par.rs` and `#[cfg(test)]` regions — all concurrency goes through the deterministic `rkvc_tensor::par` pool so results stay bit-identical at any `RKVC_THREADS`. |
//! | E001 | No `unwrap()`/`expect()`/`panic!` in non-test library code of `rkvc-kvcache` and `rkvc-serving` — the serving stack must degrade via `Result`, not abort. |
//! | H001 | Every manifest dependency resolves inside the workspace (see [`crate::hermetic`]). |
//! | A001 | An `rkvc-allow` suppression must name a known lint and carry a reason; a malformed one is itself a violation and suppresses nothing. |
//!
//! A violation is suppressed by `// rkvc-allow(LINT_ID): reason` on the
//! same line, or on the line directly above when the comment stands alone.

use crate::lexer::{lex, test_mask, Tok};

/// All catalog lint ids, in report order.
pub const LINT_IDS: [&str; 7] = ["D001", "D002", "D003", "D004", "E001", "H001", "A001"];

/// One reported finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Lint id (`D001`, …).
    pub lint: &'static str,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What was found.
    pub message: String,
    /// The trimmed source line.
    pub excerpt: String,
    /// Whether a valid `rkvc-allow` covers it.
    pub suppressed: bool,
    /// The suppression's reason, when suppressed.
    pub reason: Option<String>,
}

impl Violation {
    /// `file:line: [lint] message` — the human diagnostic header.
    pub fn header(&self) -> String {
        format!("{}:{}: [{}] {}", self.file, self.line, self.lint, self.message)
    }
}

/// A parsed `rkvc-allow(ID): reason` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// The lint it targets.
    pub lint: String,
    /// The justification after the colon.
    pub reason: String,
    /// Line the comment sits on.
    pub line: u32,
    /// Line it covers (same line, or the next when the comment stands
    /// alone).
    pub covers: u32,
}

/// Outcome of parsing one line comment for a suppression.
enum AllowParse {
    /// No `rkvc-allow` marker present.
    None,
    /// Well-formed suppression.
    Ok { lint: String, reason: String },
    /// Marker present but malformed (A001), with a description.
    Bad(String),
}

/// Parses `rkvc-allow(LINT_ID): reason` out of a line comment's text.
///
/// The directive must *lead* the comment (`// rkvc-allow(...)`), so prose
/// and doc examples that merely mention the syntax never parse as
/// suppressions.
fn parse_allow(text: &str) -> AllowParse {
    let lead = text.trim_start();
    if !lead.starts_with("rkvc-allow") {
        return AllowParse::None;
    }
    let rest = &lead["rkvc-allow".len()..];
    let Some(rest) = rest.strip_prefix('(') else {
        return AllowParse::Bad("missing '(LINT_ID)' after rkvc-allow".to_owned());
    };
    let Some(close) = rest.find(')') else {
        return AllowParse::Bad("unclosed '(' in rkvc-allow".to_owned());
    };
    let lint = rest[..close].trim().to_owned();
    if !LINT_IDS.contains(&lint.as_str()) {
        return AllowParse::Bad(format!("unknown lint id '{lint}' in rkvc-allow"));
    }
    let tail = &rest[close + 1..];
    let Some(reason) = tail.trim_start().strip_prefix(':') else {
        return AllowParse::Bad("missing ': reason' after rkvc-allow(ID)".to_owned());
    };
    let reason = reason.trim();
    if reason.is_empty() {
        return AllowParse::Bad("empty reason in rkvc-allow — every suppression must say why".to_owned());
    }
    AllowParse::Ok {
        lint,
        reason: reason.to_owned(),
    }
}

/// Which lint scopes a file falls into, derived from its workspace path.
#[derive(Debug, Clone, Copy)]
struct FileScope {
    /// `crates/bench/**` — the only place wall-clock reads are allowed.
    bench: bool,
    /// `crates/kvcache/src/**` or `crates/serving/src/**` — E001 applies.
    panic_free: bool,
    /// `crates/tensor/src/**` — home of the RNG substrate (D003 exempt).
    tensor: bool,
    /// `crates/tensor/src/par.rs` — the one module allowed to touch
    /// `std::thread` (D004 exempt).
    par_home: bool,
    /// Workspace `tests/**` — entirely test code.
    test_file: bool,
}

fn scope_of(path: &str) -> FileScope {
    FileScope {
        bench: path.starts_with("crates/bench/"),
        panic_free: path.starts_with("crates/kvcache/src/")
            || path.starts_with("crates/serving/src/"),
        tensor: path.starts_with("crates/tensor/src/"),
        par_home: path == "crates/tensor/src/par.rs",
        test_file: path.starts_with("tests/"),
    }
}

/// External RNG entry points that bypass the deterministic substrate.
const RNG_BYPASS_IDENTS: [&str; 8] = [
    "thread_rng",
    "ThreadRng",
    "OsRng",
    "StdRng",
    "SmallRng",
    "from_entropy",
    "getrandom",
    "RandomState",
];

/// Wall-clock identifiers.
const CLOCK_IDENTS: [&str; 3] = ["Instant", "SystemTime", "UNIX_EPOCH"];

/// Scans one Rust source file. `path` must be workspace-relative with `/`
/// separators; `src` is the file contents.
pub fn scan_source(path: &str, src: &str) -> Vec<Violation> {
    let lines: Vec<&str> = src.lines().collect();
    let excerpt = |line: u32| -> String {
        lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_owned())
            .unwrap_or_default()
    };
    let scope = scope_of(path);

    let tokens = match lex(src) {
        Ok(t) => t,
        Err(e) => {
            return vec![Violation {
                lint: "A001",
                file: path.to_owned(),
                line: e.line,
                message: format!("file does not lex: {e}"),
                excerpt: excerpt(e.line),
                suppressed: false,
                reason: None,
            }]
        }
    };
    let in_test = test_mask(&tokens);

    // Pass 1: collect suppressions (and flag malformed ones).
    let mut suppressions: Vec<Suppression> = Vec::new();
    let mut raw = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        let Tok::LineComment(text) = &t.tok else { continue };
        match parse_allow(text) {
            AllowParse::None => {}
            AllowParse::Bad(msg) => raw.push(Violation {
                lint: "A001",
                file: path.to_owned(),
                line: t.line,
                message: msg,
                excerpt: excerpt(t.line),
                suppressed: false,
                reason: None,
            }),
            AllowParse::Ok { lint, reason } => {
                // A standalone comment covers the next line; a trailing
                // comment covers its own line.
                let standalone = !tokens[..i]
                    .iter()
                    .rev()
                    .take_while(|p| p.line == t.line)
                    .any(|p| !matches!(p.tok, Tok::LineComment(_)));
                suppressions.push(Suppression {
                    covers: if standalone { t.line + 1 } else { t.line },
                    lint,
                    reason,
                    line: t.line,
                });
            }
        }
    }

    // Pass 2: token-pattern lints.
    let ident_at = |i: usize| -> Option<&str> {
        match &tokens[i].tok {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    };
    let punct_at =
        |i: usize, c: char| -> bool { tokens.get(i).map(|t| &t.tok) == Some(&Tok::Punct(c)) };

    for i in 0..tokens.len() {
        let Some(id) = ident_at(i) else { continue };
        let line = tokens[i].line;
        let mut push = |lint: &'static str, message: String| {
            raw.push(Violation {
                lint,
                file: path.to_owned(),
                line,
                message,
                excerpt: excerpt(line),
                suppressed: false,
                reason: None,
            });
        };

        // D001 — wall-clock reads outside the bench harness.
        if !scope.bench && CLOCK_IDENTS.contains(&id) {
            push(
                "D001",
                format!("wall-clock type `{id}` outside crates/bench breaks run-to-run determinism"),
            );
            continue;
        }

        // D002 — unordered containers in non-test code.
        if !scope.test_file
            && !in_test[i]
            && (id == "HashMap" || id == "HashSet")
        {
            push(
                "D002",
                format!("`{id}` iteration order is nondeterministic; use BTreeMap/BTreeSet or sort before emission"),
            );
            continue;
        }

        // D003 — RNG bypasses.
        if RNG_BYPASS_IDENTS.contains(&id) {
            push(
                "D003",
                format!("`{id}` bypasses the deterministic rkvc_tensor::det RNG substrate"),
            );
            continue;
        }
        if !scope.tensor && !scope.test_file && !in_test[i] {
            let seeded_new = id == "SeededRng"
                && punct_at(i + 1, ':')
                && punct_at(i + 2, ':')
                && ident_at(i + 3) == Some("new");
            if seeded_new || id == "splitmix64" {
                push(
                    "D003",
                    "construct RNGs via rkvc_tensor::seeded_rng so every stream is seed-auditable"
                        .to_owned(),
                );
                continue;
            }
        }

        // D004 — ad-hoc threading outside the deterministic pool. Anchored
        // on the `thread` ident so `std::thread`, `thread::spawn`, and
        // `std::thread::spawn(..)` each report exactly once.
        if !scope.par_home && !scope.test_file && !in_test[i] && id == "thread" {
            let std_prefixed = i >= 3
                && punct_at(i - 1, ':')
                && punct_at(i - 2, ':')
                && ident_at(i - 3) == Some("std");
            let pool_entry = punct_at(i + 1, ':')
                && punct_at(i + 2, ':')
                && matches!(ident_at(i + 3), Some("spawn" | "scope" | "Builder"));
            if std_prefixed || pool_entry {
                push(
                    "D004",
                    "ad-hoc `std::thread` use outside rkvc_tensor::par; route concurrency through the deterministic pool"
                        .to_owned(),
                );
                continue;
            }
        }

        // E001 — panicking calls in the panic-free crates.
        if scope.panic_free && !in_test[i] {
            let call = punct_at(i + 1, '(');
            let bang = punct_at(i + 1, '!');
            let hit = match id {
                "unwrap" | "expect" if call => true,
                "panic" if bang => true,
                _ => false,
            };
            if hit {
                push(
                    "E001",
                    format!("`{id}` in non-test library code of a panic-free crate; propagate a typed error instead"),
                );
            }
        }
    }

    // Pass 3: apply suppressions.
    for v in &mut raw {
        if v.lint == "A001" {
            continue; // Never suppressable.
        }
        if let Some(s) = suppressions
            .iter()
            .find(|s| s.lint == v.lint && s.covers == v.line)
        {
            v.suppressed = true;
            v.reason = Some(s.reason.clone());
        }
    }
    raw
}
