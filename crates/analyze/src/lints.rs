//! The lint catalog and the per-file scan.
//!
//! | ID   | Invariant |
//! |------|-----------|
//! | D001 | No wall-clock reads (`Instant`, `SystemTime`, `UNIX_EPOCH`) outside `crates/bench` — experiment outputs must be a pure function of the source tree. |
//! | D002 | No `HashMap`/`HashSet` in non-test code — hash iteration order leaks into reports; use `BTreeMap`/`BTreeSet` or sort before emission. |
//! | D003 | No RNG construction outside `rkvc_tensor::det`/`rng`: no external RNG crates anywhere, and no `SeededRng::new`/`splitmix64` in non-test code outside `crates/tensor/src` (call `rkvc_tensor::seeded_rng`). |
//! | D004 | No ad-hoc threading outside `crates/tensor/src/par.rs` and `#[cfg(test)]` regions — neither `std::thread`/`thread::spawn`/`scope`/`Builder` expressions nor `use std::thread…` imports (any tree shape, aliased or not) — all concurrency goes through the deterministic `rkvc_tensor::par` pool so results stay bit-identical at any `RKVC_THREADS`. |
//! | D005 | No non-`SeqCst` atomic orderings (`Relaxed`, `Acquire`, `Release`, `AcqRel`) outside the deterministic-concurrency boundary (`crates/tensor/src/par.rs`, `crates/tensor/src/check.rs`) — relaxed memory games stay inside the audited pool. |
//! | D006 | No order-dependent float accumulation (`sum::<f32>()`, `sum::<f64>()`, `fold` with a float seed) in non-test code outside the sequential-kernel allowlist (`crates/tensor/src/ops.rs`, `crates/tensor/src/matrix.rs`) and `crates/bench` — route reductions through `rkvc_tensor::par::par_reduce`'s fixed tree or the audited `seq_sum_*` helpers, or justify the fixed sequential order. |
//! | E001 | No `unwrap()`/`expect()`/`panic!` in non-test library code of `rkvc-kvcache` and `rkvc-serving` — the serving stack must degrade via `Result`, not abort. |
//! | U001 | `unsafe` regions (blocks, fns, impls, traits) only in the audited allowlist (`crates/tensor/src/par.rs`), and each one must carry an adjacent `// rkvc-safety: reason` justification; the full audit inventory is emitted into `results/analyze.json`. |
//! | U002 | No `static mut`, no `transmute`/`transmute_copy`, no raw-pointer casts (`as *const` / `as *mut`) outside the unsafe allowlist. |
//! | C001 | No dead `pub` exports: a module-level `pub` item never referenced outside its defining crate (per the workspace use-graph, doc examples included) must be demoted, removed, or justified. Cross-file — reported by [`crate::usegraph`], not the per-file scan. |
//! | H001 | Every manifest dependency resolves inside the workspace (see [`crate::hermetic`]). |
//! | A001 | An `rkvc-allow` suppression must name a known lint and carry a reason; a malformed one is itself a violation and suppresses nothing. |
//!
//! A violation is suppressed by `// rkvc-allow(LINT_ID): reason` on the
//! same line, or on a standalone comment line above: a standalone
//! directive covers the next line that is not itself a pure comment
//! line, so stacked directives and explanatory comments chain through
//! to the code they annotate.
//!
//! `unsafe` justifications use a parallel convention:
//! `// rkvc-safety: reason` trailing the `unsafe` keyword's line or in
//! the contiguous comment block directly above it.

use crate::lexer::{lex, test_mask, Tok};
use crate::parse::{self, ParsedFile};
use std::collections::BTreeSet;

/// All catalog lint ids, in report order.
pub(crate) const LINT_IDS: [&str; 12] = [
    "D001", "D002", "D003", "D004", "D005", "D006", "E001", "U001", "U002", "C001", "H001",
    "A001",
];

/// The only files allowed to contain `unsafe` regions (U001) — each one
/// still requires an adjacent `rkvc-safety` justification — and the
/// U002 escape-hatch constructs.
pub(crate) const UNSAFE_ALLOWLIST: [&str; 1] = ["crates/tensor/src/par.rs"];

/// The deterministic-concurrency boundary: the only files allowed to use
/// non-`SeqCst` atomic orderings (D005).
pub(crate) const ATOMIC_ALLOWLIST: [&str; 2] =
    ["crates/tensor/src/par.rs", "crates/tensor/src/check.rs"];

/// Sequential kernels whose left-to-right float accumulation order *is*
/// the reference semantics (D006 allowlist): the `par_*` kernels must
/// reproduce these bit-for-bit, so their sequential order is load-bearing
/// and audited here rather than suppressed site by site.
pub(crate) const FLOAT_SEQ_ALLOWLIST: [&str; 2] =
    ["crates/tensor/src/ops.rs", "crates/tensor/src/matrix.rs"];

/// One reported finding.
#[derive(Debug, Clone, PartialEq, Eq)]
// rkvc-allow(C001): element type of scan_source/dead_exports results; consumers read findings via field access
pub struct Violation {
    /// Lint id (`D001`, …).
    pub lint: &'static str,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What was found.
    pub message: String,
    /// The trimmed source line.
    pub excerpt: String,
    /// Whether a valid `rkvc-allow` covers it.
    pub suppressed: bool,
    /// The suppression's reason, when suppressed.
    pub reason: Option<String>,
}

impl Violation {
    /// `file:line: [lint] message` — the human diagnostic header.
    pub fn header(&self) -> String {
        format!("{}:{}: [{}] {}", self.file, self.line, self.lint, self.message)
    }
}

/// A parsed `rkvc-allow(ID): reason` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
// rkvc-allow(C001): field type of FileAnalysis::suppressions; consumers read directives via field access
pub struct Suppression {
    /// The lint it targets.
    pub lint: String,
    /// The justification after the colon.
    pub reason: String,
    /// Line the comment sits on.
    pub line: u32,
    /// Line it covers: its own line for a trailing directive; for a
    /// standalone directive, the next line that is not purely comments
    /// (so stacked directives chain through to the code below).
    pub covers: u32,
}

/// One `unsafe` region in the audit inventory.
#[derive(Debug, Clone, PartialEq, Eq)]
// rkvc-allow(C001): field type of FileAnalysis::unsafe_audit; consumers read audit rows via field access
pub struct UnsafeAudit {
    /// Region kind label (`block`, `fn`, `impl`, `trait`, `extern`).
    pub kind: &'static str,
    /// 1-based line of the `unsafe` keyword.
    pub line: u32,
    /// The adjacent `rkvc-safety` justification, when present.
    pub justification: Option<String>,
    /// Whether the region sits in test-only code.
    pub in_test: bool,
}

/// Everything the per-file scan recovers: diagnostics plus the facts the
/// cross-file passes (use-graph, metrics, inventories) aggregate.
#[derive(Debug, Clone)]
// rkvc-allow(C001): return type of analyze_source; consumers bind analyses without naming the type
pub struct FileAnalysis {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Source lines in the file.
    pub loc: u32,
    /// Per-file findings (everything except cross-file C001).
    pub violations: Vec<Violation>,
    /// Valid `rkvc-allow` directives declared in the file.
    pub suppressions: Vec<Suppression>,
    /// Item-level parse (symbol table rows, use declarations).
    pub parsed: ParsedFile,
    /// Every identifier occurring in code (the use-graph edge set).
    pub idents: BTreeSet<String>,
    /// Identifier-shaped words in doc comments — doc examples compile as
    /// external consumers, so they keep exports alive.
    pub doc_idents: BTreeSet<String>,
    /// The `unsafe` audit inventory for this file.
    pub unsafe_audit: Vec<UnsafeAudit>,
}

/// Outcome of parsing one line comment for a suppression.
enum AllowParse {
    /// No `rkvc-allow` marker present.
    None,
    /// Well-formed suppression.
    Ok { lint: String, reason: String },
    /// Marker present but malformed (A001), with a description.
    Bad(String),
}

/// Parses `rkvc-allow(LINT_ID): reason` out of a line comment's text.
///
/// The directive must *lead* the comment (`// rkvc-allow(...)`), so prose
/// and doc examples that merely mention the syntax never parse as
/// suppressions.
fn parse_allow(text: &str) -> AllowParse {
    let lead = text.trim_start();
    if !lead.starts_with("rkvc-allow") {
        return AllowParse::None;
    }
    let rest = &lead["rkvc-allow".len()..];
    let Some(rest) = rest.strip_prefix('(') else {
        return AllowParse::Bad("missing '(LINT_ID)' after rkvc-allow".to_owned());
    };
    let Some(close) = rest.find(')') else {
        return AllowParse::Bad("unclosed '(' in rkvc-allow".to_owned());
    };
    let lint = rest[..close].trim().to_owned();
    if !LINT_IDS.contains(&lint.as_str()) {
        return AllowParse::Bad(format!("unknown lint id '{lint}' in rkvc-allow"));
    }
    let tail = &rest[close + 1..];
    let Some(reason) = tail.trim_start().strip_prefix(':') else {
        return AllowParse::Bad("missing ': reason' after rkvc-allow(ID)".to_owned());
    };
    let reason = reason.trim();
    if reason.is_empty() {
        return AllowParse::Bad("empty reason in rkvc-allow — every suppression must say why".to_owned());
    }
    AllowParse::Ok {
        lint,
        reason: reason.to_owned(),
    }
}

/// Parses `rkvc-safety: reason` out of a line comment's text. Like
/// `rkvc-allow`, the marker must lead the comment.
fn parse_safety(text: &str) -> Option<String> {
    let lead = text.trim_start();
    let rest = lead.strip_prefix("rkvc-safety")?;
    let reason = rest.trim_start().strip_prefix(':')?.trim();
    if reason.is_empty() {
        None
    } else {
        Some(reason.to_owned())
    }
}

/// Which lint scopes a file falls into, derived from its workspace path.
#[derive(Debug, Clone, Copy)]
struct FileScope {
    /// `crates/bench/**` — the only place wall-clock reads are allowed.
    bench: bool,
    /// `crates/kvcache/src/**` or `crates/serving/src/**` — E001 applies.
    panic_free: bool,
    /// `crates/tensor/src/**` — home of the RNG substrate (D003 exempt).
    tensor: bool,
    /// `crates/tensor/src/par.rs` — the one module allowed to touch
    /// `std::thread` (D004 exempt).
    par_home: bool,
    /// On the U001/U002 unsafe allowlist.
    unsafe_home: bool,
    /// On the D005 relaxed-atomics allowlist.
    atomics_home: bool,
    /// On the D006 sequential-float-kernel allowlist.
    seq_kernel: bool,
    /// Workspace `tests/**` — entirely test code.
    test_file: bool,
}

fn scope_of(path: &str) -> FileScope {
    FileScope {
        bench: path.starts_with("crates/bench/"),
        panic_free: path.starts_with("crates/kvcache/src/")
            || path.starts_with("crates/serving/src/"),
        tensor: path.starts_with("crates/tensor/src/"),
        par_home: path == "crates/tensor/src/par.rs",
        unsafe_home: UNSAFE_ALLOWLIST.contains(&path),
        atomics_home: ATOMIC_ALLOWLIST.contains(&path),
        seq_kernel: FLOAT_SEQ_ALLOWLIST.contains(&path),
        test_file: path.starts_with("tests/"),
    }
}

/// The workspace crate a scanned path belongs to, for per-crate metrics
/// and the cross-crate use-graph: `crates/<name>/…` → `<name>`, the root
/// facade `src/**` → `facade`, workspace `tests/**` and `examples/**`
/// are their own consumer pseudo-crates.
pub fn crate_of(path: &str) -> String {
    if let Some(rest) = path.strip_prefix("crates/") {
        if let Some((name, _)) = rest.split_once('/') {
            return name.to_owned();
        }
    }
    if path.starts_with("src/") || path == "src" {
        return "facade".to_owned();
    }
    if path.starts_with("tests/") {
        return "tests".to_owned();
    }
    if path.starts_with("examples/") {
        return "examples".to_owned();
    }
    "workspace".to_owned()
}

/// External RNG entry points that bypass the deterministic substrate.
const RNG_BYPASS_IDENTS: [&str; 8] = [
    "thread_rng",
    "ThreadRng",
    "OsRng",
    "StdRng",
    "SmallRng",
    "from_entropy",
    "getrandom",
    "RandomState",
];

/// Wall-clock identifiers.
const CLOCK_IDENTS: [&str; 3] = ["Instant", "SystemTime", "UNIX_EPOCH"];

/// Non-`SeqCst` memory orderings (D005).
const RELAXED_ORDERINGS: [&str; 4] = ["Relaxed", "Acquire", "Release", "AcqRel"];

/// Whether a numeric literal's raw text has float shape (`0.5`, `1f32`,
/// `2.0f64`), for the D006 `fold`-seed check.
fn is_float_literal(text: &str) -> bool {
    if text.starts_with("0x") || text.starts_with("0b") || text.starts_with("0o") {
        return false;
    }
    text.contains('.') || text.ends_with("f32") || text.ends_with("f64")
}

/// Identifier-shaped words in a doc comment's text.
fn doc_words(text: &str, out: &mut BTreeSet<String>) {
    for word in text.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_')) {
        if word
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        {
            out.insert(word.to_owned());
        }
    }
}

/// Scans one Rust source file. `path` must be workspace-relative with `/`
/// separators; `src` is the file contents. Returns only the violations;
/// [`analyze_source`] exposes the full per-file facts.
pub fn scan_source(path: &str, src: &str) -> Vec<Violation> {
    analyze_source(path, src).violations
}

/// The full per-file analysis: violations, suppressions, symbol-table
/// rows, the use-graph edge set, and the unsafe audit inventory.
pub fn analyze_source(path: &str, src: &str) -> FileAnalysis {
    let lines: Vec<&str> = src.lines().collect();
    let loc = lines.len() as u32;
    let excerpt = |line: u32| -> String {
        lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_owned())
            .unwrap_or_default()
    };
    let scope = scope_of(path);
    let mut analysis = FileAnalysis {
        path: path.to_owned(),
        loc,
        violations: Vec::new(),
        suppressions: Vec::new(),
        parsed: ParsedFile::default(),
        idents: BTreeSet::new(),
        doc_idents: BTreeSet::new(),
        unsafe_audit: Vec::new(),
    };

    let tokens = match lex(src) {
        Ok(t) => t,
        Err(e) => {
            analysis.violations.push(Violation {
                lint: "A001",
                file: path.to_owned(),
                line: e.line,
                message: format!("file does not lex: {e}"),
                excerpt: excerpt(e.line),
                suppressed: false,
                reason: None,
            });
            return analysis;
        }
    };
    let in_test = test_mask(&tokens);
    analysis.parsed = parse::parse(&tokens, &in_test);
    let in_use = analysis.parsed.use_mask(tokens.len());

    // Line classification: a "comment line" carries tokens but only line
    // comments — suppressions chain past these, and `rkvc-safety`
    // justification blocks are delimited by them.
    let mut comment_lines: BTreeSet<u32> = BTreeSet::new();
    let mut code_lines: BTreeSet<u32> = BTreeSet::new();
    let mut safety_by_line: Vec<(u32, String)> = Vec::new();
    for t in &tokens {
        match &t.tok {
            Tok::LineComment(text) => {
                comment_lines.insert(t.line);
                if let Some(reason) = parse_safety(text) {
                    safety_by_line.push((t.line, reason));
                }
                if text.starts_with('/') || text.starts_with('!') {
                    doc_words(text, &mut analysis.doc_idents);
                }
            }
            Tok::Ident(id) => {
                code_lines.insert(t.line);
                analysis.idents.insert(id.clone());
            }
            _ => {
                code_lines.insert(t.line);
            }
        }
    }
    let comment_only = |line: u32| comment_lines.contains(&line) && !code_lines.contains(&line);

    // Pass 1: collect suppressions (and flag malformed ones).
    let mut raw = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        let Tok::LineComment(text) = &t.tok else { continue };
        match parse_allow(text) {
            AllowParse::None => {}
            AllowParse::Bad(msg) => raw.push(Violation {
                lint: "A001",
                file: path.to_owned(),
                line: t.line,
                message: msg,
                excerpt: excerpt(t.line),
                suppressed: false,
                reason: None,
            }),
            AllowParse::Ok { lint, reason } => {
                // A trailing comment covers its own line; a standalone
                // comment covers the next non-comment line, chaining past
                // stacked directives and explanatory comment lines.
                let standalone = !tokens[..i]
                    .iter()
                    .rev()
                    .take_while(|p| p.line == t.line)
                    .any(|p| !matches!(p.tok, Tok::LineComment(_)));
                let covers = if standalone {
                    let mut l = t.line + 1;
                    while comment_only(l) {
                        l += 1;
                    }
                    l
                } else {
                    t.line
                };
                analysis.suppressions.push(Suppression {
                    covers,
                    lint,
                    reason,
                    line: t.line,
                });
            }
        }
    }

    // Pass 2: token-pattern lints.
    let ident_at = |i: usize| -> Option<&str> {
        match tokens.get(i).map(|t| &t.tok) {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    };
    let punct_at =
        |i: usize, c: char| -> bool { tokens.get(i).map(|t| &t.tok) == Some(&Tok::Punct(c)) };

    for i in 0..tokens.len() {
        let Some(id) = ident_at(i) else { continue };
        let line = tokens[i].line;
        let mut push = |lint: &'static str, message: String| {
            raw.push(Violation {
                lint,
                file: path.to_owned(),
                line,
                message,
                excerpt: excerpt(line),
                suppressed: false,
                reason: None,
            });
        };

        // D001 — wall-clock reads outside the bench harness.
        if !scope.bench && CLOCK_IDENTS.contains(&id) {
            push(
                "D001",
                format!("wall-clock type `{id}` outside crates/bench breaks run-to-run determinism"),
            );
            continue;
        }

        // D002 — unordered containers in non-test code.
        if !scope.test_file
            && !in_test[i]
            && (id == "HashMap" || id == "HashSet")
        {
            push(
                "D002",
                format!("`{id}` iteration order is nondeterministic; use BTreeMap/BTreeSet or sort before emission"),
            );
            continue;
        }

        // D003 — RNG bypasses.
        if RNG_BYPASS_IDENTS.contains(&id) {
            push(
                "D003",
                format!("`{id}` bypasses the deterministic rkvc_tensor::det RNG substrate"),
            );
            continue;
        }
        if !scope.tensor && !scope.test_file && !in_test[i] {
            let seeded_new = id == "SeededRng"
                && punct_at(i + 1, ':')
                && punct_at(i + 2, ':')
                && ident_at(i + 3) == Some("new");
            if seeded_new || id == "splitmix64" {
                push(
                    "D003",
                    "construct RNGs via rkvc_tensor::seeded_rng so every stream is seed-auditable"
                        .to_owned(),
                );
                continue;
            }
        }

        // D004 — ad-hoc threading outside the deterministic pool. Anchored
        // on the `thread` ident so `std::thread`, `thread::spawn`, and
        // `std::thread::spawn(..)` each report exactly once. Imports are
        // handled below on the parsed use declarations, so tokens inside
        // `use` spans are skipped here.
        if !scope.par_home && !scope.test_file && !in_test[i] && !in_use[i] && id == "thread" {
            let std_prefixed = i >= 3
                && punct_at(i - 1, ':')
                && punct_at(i - 2, ':')
                && ident_at(i - 3) == Some("std");
            let pool_entry = punct_at(i + 1, ':')
                && punct_at(i + 2, ':')
                && matches!(ident_at(i + 3), Some("spawn" | "scope" | "Builder"));
            if std_prefixed || pool_entry {
                push(
                    "D004",
                    "ad-hoc `std::thread` use outside rkvc_tensor::par; route concurrency through the deterministic pool"
                        .to_owned(),
                );
                continue;
            }
        }

        // D005 — non-SeqCst atomic orderings outside the deterministic-
        // concurrency boundary.
        if !scope.atomics_home
            && RELAXED_ORDERINGS.contains(&id)
            && i >= 3
            && punct_at(i - 1, ':')
            && punct_at(i - 2, ':')
            && ident_at(i - 3) == Some("Ordering")
        {
            push(
                "D005",
                format!(
                    "non-SeqCst atomic ordering `{id}` outside the deterministic-concurrency \
                     boundary (crates/tensor/src/par.rs, check.rs)"
                ),
            );
            continue;
        }

        // D006 — order-dependent float accumulation outside the
        // sequential-kernel allowlist.
        if !scope.seq_kernel && !scope.bench && !scope.test_file && !in_test[i] {
            let float_sum = id == "sum"
                && punct_at(i + 1, ':')
                && punct_at(i + 2, ':')
                && punct_at(i + 3, '<')
                && matches!(ident_at(i + 4), Some("f32" | "f64"))
                && punct_at(i + 5, '>');
            let float_fold = id == "fold" && punct_at(i + 1, '(') && {
                let lit = match tokens.get(i + 2).map(|t| &t.tok) {
                    Some(Tok::NumLit(text)) => Some(text),
                    Some(Tok::Punct('-')) => match tokens.get(i + 3).map(|t| &t.tok) {
                        Some(Tok::NumLit(text)) => Some(text),
                        _ => None,
                    },
                    _ => None,
                };
                lit.is_some_and(|t| is_float_literal(t))
            };
            if float_sum || float_fold {
                push(
                    "D006",
                    format!(
                        "order-dependent float accumulation (`{id}`); route through \
                         rkvc_tensor::par::par_reduce's fixed tree or the audited seq_sum_* \
                         helpers, or justify the fixed sequential order"
                    ),
                );
                continue;
            }
        }

        // E001 — panicking calls in the panic-free crates.
        if scope.panic_free && !in_test[i] {
            let call = punct_at(i + 1, '(');
            let bang = punct_at(i + 1, '!');
            let hit = match id {
                "unwrap" | "expect" if call => true,
                "panic" if bang => true,
                _ => false,
            };
            if hit {
                push(
                    "E001",
                    format!("`{id}` in non-test library code of a panic-free crate; propagate a typed error instead"),
                );
                continue;
            }
        }

        // U002 — unsafe escape hatches outside the allowlist.
        if !scope.unsafe_home {
            if id == "static" && ident_at(i + 1) == Some("mut") {
                push(
                    "U002",
                    "`static mut` outside the unsafe allowlist; use atomics or interior mutability"
                        .to_owned(),
                );
                continue;
            }
            if id == "transmute" || id == "transmute_copy" {
                push(
                    "U002",
                    format!("`{id}` outside the unsafe allowlist (crates/tensor/src/par.rs)"),
                );
                continue;
            }
            if id == "as" && punct_at(i + 1, '*') && matches!(ident_at(i + 2), Some("const" | "mut"))
            {
                push(
                    "U002",
                    "raw-pointer cast outside the unsafe allowlist (crates/tensor/src/par.rs)"
                        .to_owned(),
                );
                continue;
            }
        }
    }

    // Pass 2b: D004 on the import form itself — any use tree touching
    // `std::thread`, however spelled (`use std::thread;`,
    // `use std::{thread as t, io};`, `use std::thread::spawn as go;`).
    if !scope.par_home && !scope.test_file {
        for u in &analysis.parsed.uses {
            if u.in_test {
                continue;
            }
            if u.paths
                .iter()
                .any(|p| p == "std::thread" || p.starts_with("std::thread::"))
            {
                raw.push(Violation {
                    lint: "D004",
                    file: path.to_owned(),
                    line: u.line,
                    message: "importing `std::thread` outside rkvc_tensor::par; route concurrency \
                              through the deterministic pool"
                        .to_owned(),
                    excerpt: excerpt(u.line),
                    suppressed: false,
                    reason: None,
                });
            }
        }
    }

    // Pass 2c: U001 — the unsafe audit. Every region is inventoried with
    // its justification; outside the allowlist the region itself is a
    // violation, inside it a missing `rkvc-safety` justification is.
    for region in &analysis.parsed.unsafes {
        let justification = {
            // Trailing on the unsafe line, or anywhere in the contiguous
            // comment block directly above it.
            let mut found = safety_by_line
                .iter()
                .find(|(l, _)| *l == region.line)
                .map(|(_, r)| r.clone());
            if found.is_none() {
                let mut l = region.line.saturating_sub(1);
                while l > 0 && comment_only(l) {
                    if let Some((_, r)) = safety_by_line.iter().find(|(sl, _)| *sl == l) {
                        found = Some(r.clone());
                        break;
                    }
                    l -= 1;
                }
            }
            found
        };
        if !scope.unsafe_home {
            raw.push(Violation {
                lint: "U001",
                file: path.to_owned(),
                line: region.line,
                message: format!(
                    "`unsafe` {} outside the audited allowlist (crates/tensor/src/par.rs)",
                    region.kind.label()
                ),
                excerpt: excerpt(region.line),
                suppressed: false,
                reason: None,
            });
        } else if justification.is_none() {
            raw.push(Violation {
                lint: "U001",
                file: path.to_owned(),
                line: region.line,
                message: format!(
                    "`unsafe` {} lacks an adjacent `// rkvc-safety: reason` justification",
                    region.kind.label()
                ),
                excerpt: excerpt(region.line),
                suppressed: false,
                reason: None,
            });
        }
        analysis.unsafe_audit.push(UnsafeAudit {
            kind: region.kind.label(),
            line: region.line,
            justification,
            in_test: region.in_test,
        });
    }

    // Pass 3: apply suppressions.
    apply_suppressions(&mut raw, &analysis.suppressions);
    analysis.violations = raw;
    analysis
}

/// Marks violations covered by a matching valid suppression. A001 is
/// never suppressable.
pub(crate) fn apply_suppressions(violations: &mut [Violation], suppressions: &[Suppression]) {
    for v in violations.iter_mut() {
        if v.lint == "A001" {
            continue;
        }
        if let Some(s) = suppressions
            .iter()
            .find(|s| s.lint == v.lint && s.covers == v.line)
        {
            v.suppressed = true;
            v.reason = Some(s.reason.clone());
        }
    }
}
