//! Diagnostic rendering: human `file:line` output plus the machine
//! report persisted at `results/analyze.json`.

use crate::lints::{Violation, LINT_IDS};
use rkvc_tensor::json::JsonValue;

/// The full scan outcome.
#[derive(Debug)]
pub struct Report {
    /// Rust files scanned.
    pub files_scanned: usize,
    /// Manifests checked for H001.
    pub manifests_checked: usize,
    /// Every finding, suppressed or not, sorted by (file, line, lint).
    pub violations: Vec<Violation>,
}

impl Report {
    /// Builds a report, sorting findings deterministically.
    pub fn new(
        files_scanned: usize,
        manifests_checked: usize,
        mut violations: Vec<Violation>,
    ) -> Self {
        violations.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.lint).cmp(&(b.file.as_str(), b.line, b.lint))
        });
        Report {
            files_scanned,
            manifests_checked,
            violations,
        }
    }

    /// Findings not covered by a valid suppression.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Violation> {
        self.violations.iter().filter(|v| !v.suppressed)
    }

    /// Unsuppressed count for a lint id.
    pub fn count(&self, lint: &str) -> usize {
        self.unsuppressed().filter(|v| v.lint == lint).count()
    }

    /// Human-readable diagnostics: one block per unsuppressed finding and
    /// a per-lint summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for v in self.unsuppressed() {
            out.push_str(&v.header());
            out.push('\n');
            if !v.excerpt.is_empty() {
                out.push_str("    | ");
                out.push_str(&v.excerpt);
                out.push('\n');
            }
        }
        let suppressed = self.violations.iter().filter(|v| v.suppressed).count();
        let total: usize = LINT_IDS.iter().map(|id| self.count(id)).sum();
        out.push_str(&format!(
            "rkvc-analyze: {} files + {} manifests scanned; {} violation(s) ({} suppressed)",
            self.files_scanned, self.manifests_checked, total, suppressed
        ));
        out.push('\n');
        for id in LINT_IDS {
            let n = self.count(id);
            if n > 0 {
                out.push_str(&format!("  {id}: {n}\n"));
            }
        }
        out
    }

    /// The machine report for `results/analyze.json`.
    pub fn to_json(&self) -> JsonValue {
        let violations = JsonValue::Array(
            self.violations
                .iter()
                .map(|v| {
                    JsonValue::object(vec![
                        ("lint", JsonValue::Str(v.lint.to_owned())),
                        ("file", JsonValue::Str(v.file.clone())),
                        ("line", JsonValue::Int(v.line as i64)),
                        ("message", JsonValue::Str(v.message.clone())),
                        ("excerpt", JsonValue::Str(v.excerpt.clone())),
                        ("suppressed", JsonValue::Bool(v.suppressed)),
                        (
                            "reason",
                            match &v.reason {
                                Some(r) => JsonValue::Str(r.clone()),
                                None => JsonValue::Null,
                            },
                        ),
                    ])
                })
                .collect(),
        );
        let counts = JsonValue::Object(
            LINT_IDS
                .iter()
                .map(|id| ((*id).to_owned(), JsonValue::Int(self.count(id) as i64)))
                .collect(),
        );
        JsonValue::object(vec![
            ("tool", JsonValue::Str("rkvc-analyze".to_owned())),
            ("files_scanned", JsonValue::Int(self.files_scanned as i64)),
            (
                "manifests_checked",
                JsonValue::Int(self.manifests_checked as i64),
            ),
            ("unsuppressed_by_lint", counts),
            ("violations", violations),
        ])
    }
}
