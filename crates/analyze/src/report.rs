//! Diagnostic rendering: human `file:line` output plus the machine
//! report persisted at `results/analyze.json` — violations, per-crate
//! metrics, the `unsafe` audit inventory, and the suppression inventory
//! with reasons.

use crate::lints::{self, FileAnalysis, Violation, LINT_IDS};
use rkvc_tensor::json::JsonValue;
use std::collections::BTreeMap;

/// Aggregate metrics for one workspace crate.
#[derive(Debug, Default, Clone)]
// rkvc-allow(C001): value type of Report::crates; consumers read metrics via field access
pub struct CrateMetrics {
    /// Rust files scanned.
    pub files: usize,
    /// Total source lines.
    pub loc: u64,
    /// `unsafe` regions (blocks, fns, impls) in the crate.
    pub unsafe_regions: usize,
    /// Valid `rkvc-allow` directives declared.
    pub suppressions: usize,
}

/// One row of the workspace `unsafe` audit.
#[derive(Debug, Clone)]
// rkvc-allow(C001): element type of Report::unsafe_inventory; consumers read rows via field access
pub struct UnsafeEntry {
    /// Defining file (workspace-relative).
    pub file: String,
    /// 1-based line of the `unsafe` keyword.
    pub line: u32,
    /// Region kind label (`block`, `fn`, `impl`, …).
    pub kind: &'static str,
    /// The adjacent `rkvc-safety` justification, when present.
    pub justification: Option<String>,
}

/// One row of the suppression inventory.
#[derive(Debug, Clone)]
// rkvc-allow(C001): element type of Report::suppression_inventory; consumers read rows via field access
pub struct SuppressionEntry {
    /// Declaring file (workspace-relative).
    pub file: String,
    /// Line the directive sits on.
    pub line: u32,
    /// The lint it targets.
    pub lint: String,
    /// The written reason.
    pub reason: String,
}

/// The full scan outcome.
#[derive(Debug)]
// rkvc-allow(C001): return type of scan_workspace; the analyzer bin binds the report without naming the type
pub struct Report {
    /// Rust files scanned.
    pub files_scanned: usize,
    /// Manifests checked for H001.
    pub manifests_checked: usize,
    /// Every finding, suppressed or not, sorted by (file, line, lint).
    pub violations: Vec<Violation>,
    /// Per-crate metrics, keyed by crate name (sorted).
    pub crates: BTreeMap<String, CrateMetrics>,
    /// Every `unsafe` region in the tree, sorted by (file, line).
    pub unsafe_inventory: Vec<UnsafeEntry>,
    /// Every valid suppression in the tree, sorted by (file, line, lint).
    pub suppression_inventory: Vec<SuppressionEntry>,
}

impl Report {
    /// Builds a report from the per-file analyses, sorting everything
    /// deterministically.
    pub fn new(
        manifests_checked: usize,
        analyses: &[FileAnalysis],
        mut violations: Vec<Violation>,
    ) -> Self {
        violations.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.lint).cmp(&(b.file.as_str(), b.line, b.lint))
        });
        let mut crates: BTreeMap<String, CrateMetrics> = BTreeMap::new();
        let mut unsafe_inventory = Vec::new();
        let mut suppression_inventory = Vec::new();
        for a in analyses {
            let m = crates.entry(lints::crate_of(&a.path)).or_default();
            m.files += 1;
            m.loc += u64::from(a.loc);
            m.unsafe_regions += a.unsafe_audit.len();
            m.suppressions += a.suppressions.len();
            for u in &a.unsafe_audit {
                unsafe_inventory.push(UnsafeEntry {
                    file: a.path.clone(),
                    line: u.line,
                    kind: u.kind,
                    justification: u.justification.clone(),
                });
            }
            for s in &a.suppressions {
                suppression_inventory.push(SuppressionEntry {
                    file: a.path.clone(),
                    line: s.line,
                    lint: s.lint.clone(),
                    reason: s.reason.clone(),
                });
            }
        }
        unsafe_inventory.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
        suppression_inventory.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.lint.as_str()).cmp(&(
                b.file.as_str(),
                b.line,
                b.lint.as_str(),
            ))
        });
        Report {
            files_scanned: analyses.len(),
            manifests_checked,
            violations,
            crates,
            unsafe_inventory,
            suppression_inventory,
        }
    }

    /// Findings not covered by a valid suppression.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Violation> {
        self.violations.iter().filter(|v| !v.suppressed)
    }

    /// Unsuppressed count for a lint id.
    pub fn count(&self, lint: &str) -> usize {
        self.unsuppressed().filter(|v| v.lint == lint).count()
    }

    /// Human-readable diagnostics: one block per unsuppressed finding and
    /// a per-lint summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for v in self.unsuppressed() {
            out.push_str(&v.header());
            out.push('\n');
            if !v.excerpt.is_empty() {
                out.push_str("    | ");
                out.push_str(&v.excerpt);
                out.push('\n');
            }
        }
        let suppressed = self.violations.iter().filter(|v| v.suppressed).count();
        let total: usize = LINT_IDS.iter().map(|id| self.count(id)).sum();
        let unjustified = self
            .unsafe_inventory
            .iter()
            .filter(|u| u.justification.is_none())
            .count();
        out.push_str(&format!(
            "rkvc-analyze: {} files + {} manifests scanned; {} violation(s) ({} suppressed); \
             {} unsafe region(s) ({} unjustified)",
            self.files_scanned,
            self.manifests_checked,
            total,
            suppressed,
            self.unsafe_inventory.len(),
            unjustified
        ));
        out.push('\n');
        for id in LINT_IDS {
            let n = self.count(id);
            if n > 0 {
                out.push_str(&format!("  {id}: {n}\n"));
            }
        }
        out
    }

    /// The machine report for `results/analyze.json`.
    pub fn to_json(&self) -> JsonValue {
        let violations = JsonValue::Array(
            self.violations
                .iter()
                .map(|v| {
                    JsonValue::object(vec![
                        ("lint", JsonValue::Str(v.lint.to_owned())),
                        ("file", JsonValue::Str(v.file.clone())),
                        ("line", JsonValue::Int(v.line as i64)),
                        ("message", JsonValue::Str(v.message.clone())),
                        ("excerpt", JsonValue::Str(v.excerpt.clone())),
                        ("suppressed", JsonValue::Bool(v.suppressed)),
                        (
                            "reason",
                            match &v.reason {
                                Some(r) => JsonValue::Str(r.clone()),
                                None => JsonValue::Null,
                            },
                        ),
                    ])
                })
                .collect(),
        );
        let counts = JsonValue::Object(
            LINT_IDS
                .iter()
                .map(|id| ((*id).to_owned(), JsonValue::Int(self.count(id) as i64)))
                .collect(),
        );
        let crates = JsonValue::Object(
            self.crates
                .iter()
                .map(|(name, m)| {
                    (
                        name.clone(),
                        JsonValue::object(vec![
                            ("files", JsonValue::Int(m.files as i64)),
                            ("loc", JsonValue::Int(m.loc as i64)),
                            ("unsafe_regions", JsonValue::Int(m.unsafe_regions as i64)),
                            ("suppressions", JsonValue::Int(m.suppressions as i64)),
                        ]),
                    )
                })
                .collect(),
        );
        let unsafe_inventory = JsonValue::Array(
            self.unsafe_inventory
                .iter()
                .map(|u| {
                    JsonValue::object(vec![
                        ("file", JsonValue::Str(u.file.clone())),
                        ("line", JsonValue::Int(u.line as i64)),
                        ("kind", JsonValue::Str(u.kind.to_owned())),
                        (
                            "justification",
                            match &u.justification {
                                Some(j) => JsonValue::Str(j.clone()),
                                None => JsonValue::Null,
                            },
                        ),
                    ])
                })
                .collect(),
        );
        let suppressions = JsonValue::Array(
            self.suppression_inventory
                .iter()
                .map(|s| {
                    JsonValue::object(vec![
                        ("file", JsonValue::Str(s.file.clone())),
                        ("line", JsonValue::Int(s.line as i64)),
                        ("lint", JsonValue::Str(s.lint.clone())),
                        ("reason", JsonValue::Str(s.reason.clone())),
                    ])
                })
                .collect(),
        );
        JsonValue::object(vec![
            ("tool", JsonValue::Str("rkvc-analyze".to_owned())),
            ("files_scanned", JsonValue::Int(self.files_scanned as i64)),
            (
                "manifests_checked",
                JsonValue::Int(self.manifests_checked as i64),
            ),
            ("unsuppressed_by_lint", counts),
            ("crates", crates),
            ("unsafe_inventory", unsafe_inventory),
            ("suppressions", suppressions),
            ("violations", violations),
        ])
    }
}
