//! H001 — the dependency-closure check, on manifests instead of `cargo
//! tree` text scraping.
//!
//! Gate 1 of `check_hermetic.sh` shells out to `cargo tree | awk`; that
//! pipeline needs a Unix shell and a functioning cargo cache. This module
//! re-derives the same invariant from the `Cargo.toml` files alone: every
//! dependency of every workspace member must resolve *inside* the
//! workspace — declared via `path = …` or `workspace = true` — and must
//! name a workspace member. Registry versions (`foo = "1.0"`), `git`, and
//! alternate-`registry` sources are violations.
//!
//! The parser covers the TOML subset the workspace uses: `[section]`
//! headers, `key = value` pairs with string / inline-table / bool / array
//! values, dotted keys (`foo.workspace = true`), and `[dependencies.foo]`
//! sub-tables.

use crate::lints::Violation;
use std::path::Path;

/// Dependency-carrying section kinds we police.
fn is_dep_section(section: &str) -> Option<&str> {
    // Returns the sub-table dependency name when the section itself names
    // one (`[dependencies.foo]` → `foo`), or "" for a plain dep section.
    for base in [
        "dependencies",
        "dev-dependencies",
        "build-dependencies",
        "workspace.dependencies",
    ] {
        if section == base {
            return Some("");
        }
        if let Some(rest) = section.strip_prefix(base) {
            if let Some(name) = rest.strip_prefix('.') {
                return Some(name);
            }
        }
    }
    // `[target.'cfg(..)'.dependencies]` and friends.
    if section.starts_with("target.") {
        if let Some(pos) = section.rfind("dependencies") {
            let tail = &section[pos + "dependencies".len()..];
            if tail.is_empty() {
                return Some("");
            }
            if let Some(name) = tail.strip_prefix('.') {
                return Some(name);
            }
        }
    }
    None
}

/// Strips a trailing line comment from a TOML line (respecting quotes).
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// `"name"` → `name`; leaves bare keys alone.
fn unquote(s: &str) -> &str {
    s.trim().trim_matches('"').trim_matches('\'')
}

/// Reads the `[package] name` out of one manifest, if present.
pub(crate) fn package_name(toml: &str) -> Option<String> {
    let mut section = String::new();
    for line in toml.lines() {
        let line = strip_comment(line).trim();
        if let Some(header) = line.strip_prefix('[') {
            section = header.trim_end_matches(']').trim().to_owned();
        } else if section == "package" {
            if let Some((k, v)) = line.split_once('=') {
                if k.trim() == "name" {
                    return Some(unquote(v).to_owned());
                }
            }
        }
    }
    None
}

/// One manifest to check: workspace-relative path plus contents.
pub struct Manifest {
    /// Workspace-relative path (`crates/tensor/Cargo.toml`).
    pub path: String,
    /// File contents.
    pub text: String,
}

/// Loads `Cargo.toml` plus every `crates/*/Cargo.toml` under `root`,
/// sorted by path for deterministic reports.
///
/// # Errors
///
/// Returns the underlying IO error with the offending path.
pub(crate) fn load_manifests(root: &Path) -> Result<Vec<Manifest>, String> {
    let mut paths = vec!["Cargo.toml".to_owned()];
    let crates_dir = root.join("crates");
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("{}: {e}", crates_dir.display()))?;
    let mut names: Vec<String> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", crates_dir.display()))?;
        if entry.path().join("Cargo.toml").is_file() {
            names.push(entry.file_name().to_string_lossy().into_owned());
        }
    }
    names.sort();
    paths.extend(names.iter().map(|n| format!("crates/{n}/Cargo.toml")));
    let mut out = Vec::new();
    for p in paths {
        let text = std::fs::read_to_string(root.join(&p))
            .map_err(|e| format!("{p}: {e}"))?;
        out.push(Manifest { path: p, text });
    }
    Ok(out)
}

/// Checks the dependency closure across the given manifests.
pub fn check_manifests(manifests: &[Manifest]) -> Vec<Violation> {
    let members: Vec<String> = manifests
        .iter()
        .filter_map(|m| package_name(&m.text))
        .collect();
    let mut out = Vec::new();
    for m in manifests {
        check_one(m, &members, &mut out);
    }
    out
}

fn check_one(m: &Manifest, members: &[String], out: &mut Vec<Violation>) {
    let mut section = String::new();
    for (idx, raw) in m.text.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            section = header.trim_end_matches(']').trim().to_owned();
            // `[dependencies.foo]` sub-table: validate the name here; the
            // body keys are checked as they stream past below.
            if let Some(name) = is_dep_section(&section) {
                if !name.is_empty() {
                    check_name(m, line_no, raw, unquote(name), members, out);
                }
            }
            continue;
        }
        let Some(sub) = is_dep_section(&section) else { continue };
        let Some((key, value)) = line.split_once('=') else { continue };
        let key = key.trim();
        let value = value.trim();
        if sub.is_empty() {
            // `name = …` or `name.workspace = true` inside a dep section.
            let (name, dotted) = match key.split_once('.') {
                Some((n, rest)) => (unquote(n), Some(rest.trim())),
                None => (unquote(key), None),
            };
            check_name(m, line_no, raw, name, members, out);
            match dotted {
                Some("workspace") => {} // `foo.workspace = true` — hermetic.
                Some(other) => check_source_key(m, line_no, raw, name, other, out),
                None => check_value(m, line_no, raw, name, value, out),
            }
        } else {
            // Inside `[dependencies.foo]`: each key is a source attribute.
            check_source_key(m, line_no, raw, unquote(sub), key, out);
        }
    }
}

/// A dependency name must be a workspace member.
fn check_name(
    m: &Manifest,
    line: u32,
    raw: &str,
    name: &str,
    members: &[String],
    out: &mut Vec<Violation>,
) {
    if !members.iter().any(|mem| mem == name) {
        out.push(violation(
            m,
            line,
            raw,
            format!("dependency '{name}' is not a workspace member — the build must stay registry-free"),
        ));
    }
}

/// Keys that point a dependency outside the workspace.
fn check_source_key(
    m: &Manifest,
    line: u32,
    raw: &str,
    name: &str,
    key: &str,
    out: &mut Vec<Violation>,
) {
    if matches!(key, "git" | "registry" | "registry-index" | "branch" | "tag" | "rev") {
        out.push(violation(
            m,
            line,
            raw,
            format!("dependency '{name}' uses '{key}', an out-of-workspace source"),
        ));
    }
}

/// Validates an inline dependency value: must carry `path` or
/// `workspace = true`; a bare version string is a registry fetch.
fn check_value(
    m: &Manifest,
    line: u32,
    raw: &str,
    name: &str,
    value: &str,
    out: &mut Vec<Violation>,
) {
    if value.starts_with('"') || value.starts_with('\'') {
        out.push(violation(
            m,
            line,
            raw,
            format!("dependency '{name}' pins a registry version; use a workspace path dependency"),
        ));
        return;
    }
    if value.starts_with('{') {
        let has = |k: &str| {
            value
                .trim_start_matches('{')
                .split(',')
                .any(|part| part.split('=').next().map(str::trim) == Some(k))
        };
        for bad in ["git", "registry", "registry-index"] {
            if has(bad) {
                out.push(violation(
                    m,
                    line,
                    raw,
                    format!("dependency '{name}' uses '{bad}', an out-of-workspace source"),
                ));
                return;
            }
        }
        if !has("path") && !has("workspace") {
            out.push(violation(
                m,
                line,
                raw,
                format!("dependency '{name}' lacks 'path'/'workspace = true'; it would resolve to a registry"),
            ));
        }
    }
}

fn violation(m: &Manifest, line: u32, raw: &str, message: String) -> Violation {
    Violation {
        lint: "H001",
        file: m.path.clone(),
        line,
        message,
        excerpt: raw.trim().to_owned(),
        suppressed: false,
        reason: None,
    }
}
