//! Benchmark support crate.
//!
//! Hosts the `repro` binary (regenerates every paper table/figure — see
//! `cargo run -p rkvc-bench --bin repro -- --help`), the in-repo
//! statistical [`Harness`] (warmup + batched timed samples, median/p95
//! report, JSON output under `results/`), and the benchmark suites under
//! `benches/`:
//!
//! * `fig1_throughput` — the Figure 1 cost-model sweeps.
//! * `fig3_attention` — per-algorithm attention-layer cost evaluation.
//! * `compression_kernels` — real quantize/dequantize/evict work on the
//!   cache implementations.
//! * `model_decode` — TinyLM prefill/decode under each policy.
//! * `serving_sim` — server and cluster simulation throughput.
//! * `ablations` — design-choice ablations from DESIGN.md (naive vs flash
//!   traffic, KIVI residual window, GEAR rank, H2O budget, paged block
//!   size).
//! * `par_scaling` — the deterministic pool and blocked/memoized kernels
//!   vs the seed single-threaded paths; also writes `BENCH_par.json` at
//!   the workspace root.

/// The default results directory the `repro` binary writes JSON into.
pub const RESULTS_DIR: &str = "results";

mod harness;

pub use harness::{workspace_root, BenchRecord, Bencher, Group, Harness};
