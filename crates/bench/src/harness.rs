//! Minimal statistical benchmark harness.
//!
//! Replaces `criterion` for the workspace's six bench suites. Each
//! benchmark is calibrated (iterations batched to a ~5 ms sample), warmed
//! up, then timed over a fixed number of samples; the harness reports
//! median / p95 / min / mean nanoseconds per iteration and writes the full
//! record set as JSON under `results/` so successive runs can be diffed.
//!
//! The API deliberately mirrors the slice of criterion the benches used —
//! groups, `sample_size`, `bench_function`, `b.iter(..)` — so a suite
//! reads the same as before:
//!
//! ```no_run
//! use rkvc_bench::Harness;
//!
//! let mut h = Harness::new("example_suite");
//! let mut g = h.group("sums");
//! g.bench_function("1k", |b| b.iter(|| (0..1000u64).sum::<u64>()));
//! g.finish();
//! h.finish();
//! ```

use rkvc_tensor::json::{JsonValue, ToJson};
use std::time::Instant;

/// Target wall-clock length of one timed sample.
const TARGET_SAMPLE_NS: u128 = 5_000_000;
/// Samples discarded as warmup before measurement starts.
const WARMUP_SAMPLES: usize = 3;
/// Default number of measured samples per benchmark.
const DEFAULT_SAMPLE_SIZE: usize = 30;

/// One benchmark's measured statistics (all per-iteration nanoseconds).
#[derive(Debug, Clone)]
// rkvc-allow(C001): return type of Harness::records; consumers iterate records without naming the type
pub struct BenchRecord {
    /// Group name (suite section).
    pub group: String,
    /// Benchmark id within the group.
    pub name: String,
    /// Measured samples (after warmup).
    pub samples: usize,
    /// Iterations batched into each sample.
    pub iters_per_sample: u64,
    /// Median ns/iter across samples.
    pub median_ns: f64,
    /// 95th-percentile ns/iter.
    pub p95_ns: f64,
    /// Mean ns/iter.
    pub mean_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
}

rkvc_tensor::json_struct!(BenchRecord {
    group,
    name,
    samples,
    iters_per_sample,
    median_ns,
    p95_ns,
    mean_ns,
    min_ns,
    max_ns,
});

/// Timing driver handed to each benchmark closure.
// rkvc-allow(C001): closure-parameter type of bench_function; bench bodies receive it by inference
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Times `iters` calls of `f`, keeping each result alive until after
    /// the clock stops so the work is not optimized away.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

/// A benchmark suite: runs benches, prints a table, writes JSON.
pub struct Harness {
    suite: String,
    records: Vec<BenchRecord>,
}

impl Harness {
    /// Creates a harness for the named suite.
    pub fn new(suite: &str) -> Self {
        println!("# bench suite: {suite}");
        println!(
            "{:<28} {:<16} {:>12} {:>12} {:>12}",
            "group", "bench", "median", "p95", "min"
        );
        Harness {
            suite: suite.to_owned(),
            records: Vec::new(),
        }
    }

    /// Opens a named benchmark group.
    pub fn group(&mut self, name: impl ToString) -> Group<'_> {
        Group {
            harness: self,
            name: name.to_string(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl ToString, f: F) {
        let mut g = self.group("");
        g.bench_function(name, f);
        g.finish();
    }

    /// The records measured so far — for suites that post-process results
    /// (speedup ratios, extra JSON artifacts) before `finish()`.
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }

    /// Prints the summary footer and writes
    /// `results/bench_<suite>.json` at the workspace root.
    pub fn finish(self) {
        let dir = results_dir();
        let path = dir.join(format!("bench_{}.json", self.suite));
        let doc = JsonValue::object(vec![
            ("suite", self.suite.to_json()),
            ("records", self.records.to_json()),
        ]);
        if let Err(e) = std::fs::create_dir_all(&dir)
            .and_then(|_| std::fs::write(&path, doc.to_pretty_string()))
        {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("wrote {} ({} records)", path.display(), self.records.len());
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        group: &str,
        name: String,
        sample_size: usize,
        mut f: F,
    ) {
        // Calibrate: grow the batch until one sample takes ~5 ms.
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher {
                iters,
                elapsed_ns: 0,
            };
            f(&mut b);
            if b.elapsed_ns >= TARGET_SAMPLE_NS || iters >= 1 << 20 {
                break;
            }
            // Aim straight at the target, with headroom for noise.
            let scale = TARGET_SAMPLE_NS as f64 / b.elapsed_ns.max(1) as f64;
            iters = ((iters as f64 * scale.min(16.0)).ceil() as u64).max(iters + 1);
        }

        let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
        for sample in 0..WARMUP_SAMPLES + sample_size {
            let mut b = Bencher {
                iters,
                elapsed_ns: 0,
            };
            f(&mut b);
            if sample >= WARMUP_SAMPLES {
                per_iter.push(b.elapsed_ns as f64 / iters as f64);
            }
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let pick = |q: f64| -> f64 {
            let idx = ((per_iter.len() - 1) as f64 * q).round() as usize;
            per_iter[idx]
        };
        let record = BenchRecord {
            group: group.to_owned(),
            name,
            samples: per_iter.len(),
            iters_per_sample: iters,
            median_ns: pick(0.5),
            p95_ns: pick(0.95),
            mean_ns: per_iter.iter().sum::<f64>() / per_iter.len() as f64,
            min_ns: per_iter[0],
            max_ns: *per_iter.last().expect("at least one sample"),
        };
        println!(
            "{:<28} {:<16} {:>12} {:>12} {:>12}",
            record.group,
            record.name,
            fmt_ns(record.median_ns),
            fmt_ns(record.p95_ns),
            fmt_ns(record.min_ns),
        );
        self.records.push(record);
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct Group<'a> {
    harness: &'a mut Harness,
    name: String,
    sample_size: usize,
}

impl Group<'_> {
    /// Sets the number of measured samples for subsequent benches.
    pub fn sample_size(&mut self, n: usize) {
        self.sample_size = n.max(2);
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl ToString, f: F) {
        let group = self.name.clone();
        self.harness
            .run_one(&group, name.to_string(), self.sample_size, f);
    }

    /// Closes the group (records are already committed; this exists so
    /// suites keep criterion's `g.finish()` shape).
    pub fn finish(self) {}
}

/// The workspace root directory.
///
/// `cargo bench` runs bench binaries with the *package* directory as cwd
/// while `cargo run` keeps the caller's cwd, so relative output paths
/// would scatter artifacts. Cargo exports `CARGO_MANIFEST_DIR` into the
/// runtime environment of anything it executes; climb from there to the
/// outermost directory that still has a `Cargo.toml` (the workspace
/// root). Outside cargo, fall back to the current directory.
pub fn workspace_root() -> std::path::PathBuf {
    let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") else {
        return std::path::PathBuf::from(".");
    };
    let mut root = std::path::PathBuf::from(&manifest);
    let mut cursor = root.clone();
    while let Some(parent) = cursor.parent().map(std::path::Path::to_path_buf) {
        if parent.join("Cargo.toml").is_file() {
            root = parent.clone();
        }
        cursor = parent;
    }
    root
}

/// The `results/` directory at the workspace root.
fn results_dir() -> std::path::PathBuf {
    workspace_root().join("results")
}

/// Human formatting for nanosecond quantities.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_have_ordered_statistics() {
        let mut h = Harness::new("harness_selftest");
        let mut g = h.group("g");
        g.sample_size(5);
        g.bench_function("spin", |b| {
            b.iter(|| (0..100u64).map(std::hint::black_box).sum::<u64>())
        });
        g.finish();
        let r = &h.records[0];
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.p95_ns);
        assert!(r.p95_ns <= r.max_ns);
        assert!(r.min_ns > 0.0);
        assert_eq!(r.samples, 5);
    }

    #[test]
    fn fmt_ns_picks_sane_units() {
        assert_eq!(fmt_ns(12.0), "12ns");
        assert_eq!(fmt_ns(12_500.0), "12.50us");
        assert_eq!(fmt_ns(3_200_000.0), "3.20ms");
        assert_eq!(fmt_ns(2.5e9), "2.50s");
    }
}
