//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro [--exp <id>|all] [--scale quick|paper] [--scheduler fcfs|spf|preemptive]
//!       [--out <dir>] [--list]
//! ```
//!
//! Prints each experiment's rows/series in paper layout and writes a JSON
//! copy under the output directory.

use rkvc_core::experiments::{experiment_ids, run_by_id, RunOptions, Scale};
use rkvc_serving::SchedulerConfig;
use rkvc_core::figures::render_all;
use rkvc_core::report::save_json;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--exp <id>|all|figures] [--scale quick|paper] \
         [--scheduler fcfs|spf|preemptive] [--out <dir>] [--list]\n\
         experiments: {} (plus 'figures' to render the SVG figure set)",
        experiment_ids().join(", ")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut exp = "all".to_owned();
    let mut scale = Scale::Paper;
    let mut scheduler = SchedulerConfig::Fcfs;
    let mut out = rkvc_bench::RESULTS_DIR.to_owned();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--exp" => exp = it.next().unwrap_or_else(|| usage()).clone(),
            "--scale" => {
                scale = match it.next().map(String::as_str) {
                    Some("quick") => Scale::Quick,
                    Some("paper") => Scale::Paper,
                    _ => usage(),
                }
            }
            "--scheduler" => {
                scheduler = match it.next().and_then(|s| SchedulerConfig::parse(s)) {
                    Some(s) => s,
                    None => usage(),
                }
            }
            "--out" => out = it.next().unwrap_or_else(|| usage()).clone(),
            "--list" => {
                for id in experiment_ids() {
                    println!("{id}");
                }
                return;
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    let opts = RunOptions {
        scale,
        seed: 0x5EED,
        scheduler,
    };
    if exp == "figures" || exp == "all" {
        let dir = std::path::Path::new(&out);
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {out}: {e}");
            std::process::exit(1);
        }
        for (name, svg) in render_all(&opts) {
            let path = dir.join(&name);
            match std::fs::write(&path, svg) {
                Ok(()) => println!("wrote {}", path.display()),
                Err(e) => eprintln!("warning: could not write {name}: {e}"),
            }
        }
        if exp == "figures" {
            return;
        }
    }

    let ids: Vec<&str> = if exp == "all" {
        experiment_ids()
    } else {
        vec![Box::leak(exp.clone().into_boxed_str())]
    };

    for id in ids {
        let started = std::time::Instant::now();
        match run_by_id(id, &opts) {
            Some(result) => {
                println!("{result}");
                println!(
                    "[{}] finished in {:.1}s\n",
                    id,
                    started.elapsed().as_secs_f64()
                );
                if let Err(e) = save_json(&out, id, &result) {
                    eprintln!("warning: could not save {out}/{id}.json: {e}");
                }
            }
            None => {
                eprintln!("unknown experiment id: {id}");
                usage();
            }
        }
    }
}
