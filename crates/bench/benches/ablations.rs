//! Design-choice ablations called out in DESIGN.md.
//!
//! Each group varies one design knob and reports the modelled or measured
//! consequence, so the benchmark report doubles as an ablation table:
//!
//! * naive multi-pass vs one-pass FlashAttention traffic;
//! * KIVI residual window length R;
//! * GEAR low-rank rank ratio;
//! * H2O eviction budget;
//! * paged-KV block size (fragmentation/admission trade-off), both on the
//!   raw `BlockManager` and end-to-end through a configured `ServerSim`.

use rkvc_bench::Harness;
use rkvc_gpu::{DeploymentSpec, EngineKind, GpuSpec, LlmSpec};
use rkvc_kvcache::{CompressionConfig, GearParams, H2OParams, KiviParams};
use rkvc_serving::{BlockManager, ServerSim, ServingConfig, SimRequest};
use rkvc_tensor::seeded_rng;
use std::hint::black_box;

fn dep(engine: EngineKind) -> DeploymentSpec {
    DeploymentSpec {
        gpu: GpuSpec::a6000(),
        llm: LlmSpec::llama2_7b(),
        engine,
        tensor_parallel: 1,
    }
}

fn ablate_attention_pass_structure(h: &mut Harness) {
    let mut g = h.group("ablation_naive_vs_flash_prefill");
    g.sample_size(20);
    for engine in [EngineKind::TrlEager, EngineKind::TrlFlash] {
        let d = dep(engine);
        g.bench_function(engine.label(), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for len in [1024usize, 2048, 4096] {
                    acc += d.prefill(&CompressionConfig::Fp16, 1, len).total();
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

fn fill_cache(cfg: &CompressionConfig, tokens: usize) -> usize {
    let mut rng = seeded_rng(7);
    let mut cache = cfg.build(64);
    for pos in 0..tokens {
        let k: Vec<f32> = (0..64).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let v: Vec<f32> = (0..64).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        cache.append(&k, &v, pos);
        let n = cache.len();
        cache.observe_attention(&vec![1.0 / n as f32; n]);
    }
    cache.memory_bytes()
}

fn ablate_kivi_residual(h: &mut Harness) {
    let mut g = h.group("ablation_kivi_residual_window");
    g.sample_size(10);
    for residual in [4usize, 16, 64] {
        let cfg = CompressionConfig::Kivi(KiviParams {
            bits: 4,
            group_size: 8,
            residual,
        });
        g.bench_function(residual, |b| {
            b.iter(|| black_box(fill_cache(&cfg, 192)))
        });
    }
    g.finish();
}

fn ablate_gear_rank(h: &mut Harness) {
    let mut g = h.group("ablation_gear_rank_ratio");
    g.sample_size(10);
    for (name, rank_ratio) in [("r2pct", 0.02f32), ("r10pct", 0.10), ("r25pct", 0.25)] {
        let cfg = CompressionConfig::Gear(GearParams {
            bits: 4,
            outlier_ratio: 0.05,
            rank_ratio,
            buffer: 8,
        });
        g.bench_function(name, |b| {
            b.iter(|| black_box(fill_cache(&cfg, 128)))
        });
    }
    g.finish();
}

fn ablate_h2o_budget(h: &mut Harness) {
    let mut g = h.group("ablation_h2o_budget");
    g.sample_size(10);
    for budget in [16usize, 64, 256] {
        let cfg = CompressionConfig::H2O(H2OParams {
            heavy: budget / 4,
            recent: budget - budget / 4,
        });
        g.bench_function(budget, |b| {
            b.iter(|| black_box(fill_cache(&cfg, 384)))
        });
    }
    g.finish();
}

fn ablate_block_size(h: &mut Harness) {
    let mut g = h.group("ablation_paged_block_size");
    g.sample_size(20);
    for block in [8usize, 16, 64, 256] {
        g.bench_function(block, |b| {
            b.iter(|| {
                let mut m = BlockManager::new(65536 / block, block);
                for seq in 0..64u64 {
                    m.register_seq(seq, 100 + (seq as usize % 300)).unwrap();
                }
                for seq in 0..64u64 {
                    for _ in 0..64 {
                        let _ = m.append_token(seq);
                    }
                }
                black_box(m.internal_fragmentation_tokens())
            })
        });
    }
    g.finish();
}

fn ablate_block_tokens_config(h: &mut Harness) {
    // The same knob as `ablation_paged_block_size`, but exercised through
    // the serving config end to end: block size changes admission
    // granularity and internal fragmentation, which shifts how many
    // requests batch together under a pinned pool.
    let mut g = h.group("ablation_block_tokens_config");
    g.sample_size(10);
    for block in [8usize, 16, 64, 256] {
        let cfg = ServingConfig {
            block_tokens: block,
            pool_tokens: Some(16384),
            ..ServingConfig::with_max_batch(16)
        };
        g.bench_function(block, |b| {
            b.iter(|| {
                let mut s =
                    ServerSim::with_config(0, dep(EngineKind::LmDeploy), CompressionConfig::Fp16, cfg)
                        .expect("block size is non-zero");
                for i in 0..32u64 {
                    s.enqueue(SimRequest::new(
                        i,
                        i as f64 * 0.05,
                        256 + (i as usize % 5) * 64,
                        32,
                    ));
                }
                black_box(s.run_to_completion().len())
            })
        });
    }
    g.finish();
}

fn main() {
    let mut h = Harness::new("ablations");
    ablate_attention_pass_structure(&mut h);
    ablate_kivi_residual(&mut h);
    ablate_gear_rank(&mut h);
    ablate_h2o_budget(&mut h);
    ablate_block_size(&mut h);
    ablate_block_tokens_config(&mut h);
    h.finish();
}
