//! Bench: serving-simulator throughput (server iterations,
//! cluster routing, scheduler policies) — the substrate behind Figure 5
//! and Table 8.
//!
//! Besides the usual timing records, this suite writes a machine-readable
//! `BENCH_serving.json` at the workspace root: the three scheduler
//! policies (FCFS / SPF / preemptive) served over the Table 8 cluster
//! workload with a pinned KV pool, with full TTFT / TBT / queue-delay /
//! E2E percentile summaries and the preemptive-vs-FCFS deltas — plus a
//! `prefix_vs_flat` section comparing the prefix-shared, tiered block
//! manager against the flat pool on the shared-system-prompt workload
//! (effective capacity, dedup ratio, preemption rate, p99 TTFT), and an
//! `slo_goodput` section sweeping the multi-turn session trace over
//! {FCFS, SPF, preemptive} × {SLO-blind, SLO-aware} (per-cell goodput,
//! attainment, per-class p99 TTFT, cross-turn dedup).

use rkvc_bench::{workspace_root, Harness};
use rkvc_core::experiments::ext_prefix::{prefix_workload, serve_prefix_workload, variants};
use rkvc_core::experiments::ext_scheduler::serve_workload;
use rkvc_core::experiments::ext_slo::{serve_sessions, session_trace, sweep, SloOutcome};
use rkvc_core::experiments::workloads::{cluster_workload, ClusterWorkload};
use rkvc_core::experiments::RunOptions;
use rkvc_gpu::{DeploymentSpec, EngineKind, GpuSpec, LlmSpec};
use rkvc_kvcache::CompressionConfig;
use rkvc_serving::{
    Cluster, OraclePredictor, RoutingPolicy, SchedulerConfig, ServerSim, ServingMetrics,
    SimRequest,
};
use rkvc_tensor::json::{JsonValue, ToJson};
use std::hint::black_box;

fn dep() -> DeploymentSpec {
    DeploymentSpec {
        gpu: GpuSpec::a6000(),
        llm: LlmSpec::llama2_7b(),
        engine: EngineKind::LmDeploy,
        tensor_parallel: 1,
    }
}

fn requests(n: usize) -> Vec<SimRequest> {
    (0..n)
        .map(|i| {
            let mut r = SimRequest::new(i as u64, i as f64 * 0.1, 512 + (i % 7) * 128, 64 + (i % 5) * 32);
            r.response_len_by_server = vec![r.response_len, r.response_len * 5 / 4, r.response_len * 5 / 4, r.response_len * 5 / 4];
            r
        })
        .collect()
}

fn bench_server(h: &mut Harness) {
    let mut g = h.group("server_sim_64_requests");
    g.sample_size(10);
    for (name, algo) in [
        ("fp16", CompressionConfig::Fp16),
        ("stream512", CompressionConfig::streaming(64, 448)),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut s = ServerSim::new(0, dep(), algo, 16);
                for r in requests(64) {
                    s.enqueue(r);
                }
                black_box(s.run_to_completion().len())
            })
        });
    }
    g.finish();
}

fn bench_cluster(h: &mut Harness) {
    let mut g = h.group("cluster_4gpu_64_requests");
    g.sample_size(10);
    for policy in RoutingPolicy::all() {
        g.bench_function(policy.label(), |b| {
            b.iter(|| {
                let algo = CompressionConfig::streaming(64, 448);
                let servers = vec![
                    ServerSim::new(0, dep(), CompressionConfig::Fp16, 16),
                    ServerSim::new(1, dep(), algo, 16),
                    ServerSim::new(2, dep(), algo, 16),
                    ServerSim::new(3, dep(), algo, 16),
                ];
                let done = Cluster::new(servers, policy)
                    .expect("four servers")
                    .run(requests(64), &OraclePredictor)
                    .expect("sorted arrivals");
                black_box(done.len())
            })
        });
    }
    g.finish();
}

/// Times each scheduler over the Table 8 workload and returns its served
/// metrics (one representative run per policy — the engine is
/// deterministic, so every iteration produces the same stream).
fn bench_schedulers(
    h: &mut Harness,
    w: &ClusterWorkload,
) -> Vec<(SchedulerConfig, ServingMetrics)> {
    let mut g = h.group("scheduler_table8_quick");
    g.sample_size(5);
    let mut out = Vec::new();
    for sched in SchedulerConfig::all() {
        g.bench_function(sched.label(), |b| {
            b.iter(|| black_box(serve_workload(w, sched).completed))
        });
        out.push((sched, serve_workload(w, sched)));
    }
    g.finish();
    out
}

/// Times each block-manager configuration over the shared-system-prompt
/// workload and returns its outcome (deterministic, so one representative
/// serve per variant).
fn bench_prefix_pool(
    h: &mut Harness,
) -> Vec<(&'static str, rkvc_core::experiments::ext_prefix::PrefixOutcome)> {
    let reqs = prefix_workload(&RunOptions::quick());
    let mut g = h.group("prefix_pool_quick");
    g.sample_size(5);
    let mut out = Vec::new();
    for (label, sharing, tier) in variants() {
        g.bench_function(label, |b| {
            b.iter(|| black_box(serve_prefix_workload(&reqs, sharing, tier).metrics.completed))
        });
        out.push((label, serve_prefix_workload(&reqs, sharing, tier)));
    }
    g.finish();
    out
}

/// Times each (scheduler, SLO policy) cell over the multi-turn session
/// trace and returns its outcome (deterministic, so one representative
/// serve per cell).
fn bench_slo_goodput(
    h: &mut Harness,
) -> Vec<(rkvc_serving::SchedulerConfig, rkvc_serving::SloPolicy, SloOutcome)> {
    let trace = session_trace(&RunOptions::quick());
    let mut g = h.group("slo_sessions_quick");
    g.sample_size(5);
    let mut out = Vec::new();
    for (sched, policy) in sweep() {
        g.bench_function(&format!("{}_{}", sched.label(), policy.label()), |b| {
            b.iter(|| black_box(serve_sessions(&trace, sched, policy).slo.completed))
        });
        out.push((sched, policy, serve_sessions(&trace, sched, policy)));
    }
    g.finish();
    out
}

fn main() {
    let mut h = Harness::new("serving_sim");
    bench_server(&mut h);
    bench_cluster(&mut h);

    let w = cluster_workload(&RunOptions::quick());
    let metrics = bench_schedulers(&mut h, &w);
    let pools = bench_prefix_pool(&mut h);
    let slo_cells = bench_slo_goodput(&mut h);
    let by_label = |c: SchedulerConfig| -> &ServingMetrics {
        metrics
            .iter()
            .find(|(s, _)| *s == c)
            .map(|(_, m)| m)
            .expect("all schedulers ran")
    };
    let fcfs = by_label(SchedulerConfig::Fcfs);
    let pre = by_label(SchedulerConfig::Preemptive);
    let doc = JsonValue::object(vec![
        ("suite", "serving_sim".to_json()),
        (
            "workload",
            "table8 H2O column, quick scale, combined routing, pool pinned to 3584 \
             tokens/server"
                .to_json(),
        ),
        (
            "schedulers",
            JsonValue::object(
                metrics
                    .iter()
                    .map(|(s, m)| (s.label(), m.to_json()))
                    .collect(),
            ),
        ),
        (
            "preemptive_vs_fcfs",
            JsonValue::object(vec![
                ("preemptions", pre.preemptions.to_json()),
                (
                    "mean_queue_delay_delta_s",
                    (pre.queue_delay.mean() - fcfs.queue_delay.mean()).to_json(),
                ),
                (
                    "mean_ttft_delta_s",
                    (pre.ttft.mean() - fcfs.ttft.mean()).to_json(),
                ),
                (
                    "mean_e2e_delta_s",
                    (pre.e2e.mean() - fcfs.e2e.mean()).to_json(),
                ),
            ]),
        ),
        (
            "prefix_vs_flat",
            JsonValue::object(
                pools
                    .iter()
                    .map(|(label, o)| {
                        (
                            *label,
                            JsonValue::object(vec![
                                ("completed", o.metrics.completed.to_json()),
                                ("effective_capacity", o.peak_batch.to_json()),
                                ("dedup_ratio", o.dedup_ratio.to_json()),
                                ("cow_copies", o.cow_copies.to_json()),
                                ("preemptions", o.metrics.preemptions.to_json()),
                                ("preempt_rate", o.preempt_rate.to_json()),
                                ("demoted_blocks", o.demoted_blocks.to_json()),
                                ("refilled_blocks", o.refilled_blocks.to_json()),
                                ("p99_ttft_s", o.metrics.ttft.p99().to_json()),
                                ("mean_ttft_s", o.metrics.ttft.mean().to_json()),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
        (
            "slo_goodput",
            JsonValue::Object(
                slo_cells
                    .iter()
                    .map(|(sched, policy, o)| {
                        (
                            format!("{}/{}", sched.label(), policy.label()),
                            JsonValue::object(vec![
                                ("completed", o.slo.completed.to_json()),
                                ("attainment", o.slo.attainment().to_json()),
                                ("goodput_tps", o.slo.goodput_tps.to_json()),
                                ("throughput_tps", o.slo.throughput_tps.to_json()),
                                ("preemptions", o.metrics.preemptions.to_json()),
                                ("peak_batch", o.peak_batch.to_json()),
                                ("dedup_ratio", o.dedup_ratio.to_json()),
                                (
                                    "per_class",
                                    JsonValue::object(
                                        o.slo
                                            .per_class
                                            .iter()
                                            .map(|c| {
                                                (
                                                    c.class.label(),
                                                    JsonValue::object(vec![
                                                        ("completed", c.completed.to_json()),
                                                        (
                                                            "attainment",
                                                            c.attainment().to_json(),
                                                        ),
                                                        (
                                                            "p99_ttft_s",
                                                            c.ttft.p99().to_json(),
                                                        ),
                                                        (
                                                            "mean_tbt_s",
                                                            c.tbt.mean().to_json(),
                                                        ),
                                                    ]),
                                                )
                                            })
                                            .collect(),
                                    ),
                                ),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
        ("records", h.records().to_json()),
    ]);
    let path = workspace_root().join("BENCH_serving.json");
    match std::fs::write(&path, doc.to_pretty_string()) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
    h.finish();
}
