//! Bench: serving-simulator throughput (server iterations,
//! cluster routing) — the substrate behind Figure 5 and Table 8.

use rkvc_bench::Harness;
use rkvc_gpu::{DeploymentSpec, EngineKind, GpuSpec, LlmSpec};
use rkvc_kvcache::CompressionConfig;
use rkvc_serving::{Cluster, OraclePredictor, RoutingPolicy, ServerSim, SimRequest};
use std::hint::black_box;

fn dep() -> DeploymentSpec {
    DeploymentSpec {
        gpu: GpuSpec::a6000(),
        llm: LlmSpec::llama2_7b(),
        engine: EngineKind::LmDeploy,
        tensor_parallel: 1,
    }
}

fn requests(n: usize) -> Vec<SimRequest> {
    (0..n)
        .map(|i| {
            let mut r = SimRequest::new(i as u64, i as f64 * 0.1, 512 + (i % 7) * 128, 64 + (i % 5) * 32);
            r.response_len_by_server = vec![r.response_len, r.response_len * 5 / 4, r.response_len * 5 / 4, r.response_len * 5 / 4];
            r
        })
        .collect()
}

fn bench_server(h: &mut Harness) {
    let mut g = h.group("server_sim_64_requests");
    g.sample_size(10);
    for (name, algo) in [
        ("fp16", CompressionConfig::Fp16),
        ("stream512", CompressionConfig::streaming(64, 448)),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut s = ServerSim::new(0, dep(), algo, 16);
                for r in requests(64) {
                    s.enqueue(r);
                }
                black_box(s.run_to_completion().len())
            })
        });
    }
    g.finish();
}

fn bench_cluster(h: &mut Harness) {
    let mut g = h.group("cluster_4gpu_64_requests");
    g.sample_size(10);
    for policy in RoutingPolicy::all() {
        g.bench_function(policy.label(), |b| {
            b.iter(|| {
                let algo = CompressionConfig::streaming(64, 448);
                let servers = vec![
                    ServerSim::new(0, dep(), CompressionConfig::Fp16, 16),
                    ServerSim::new(1, dep(), algo, 16),
                    ServerSim::new(2, dep(), algo, 16),
                    ServerSim::new(3, dep(), algo, 16),
                ];
                let done = Cluster::new(servers, policy)
                    .expect("four servers")
                    .run(requests(64), &OraclePredictor)
                    .expect("sorted arrivals");
                black_box(done.len())
            })
        });
    }
    g.finish();
}

fn main() {
    let mut h = Harness::new("serving_sim");
    bench_server(&mut h);
    bench_cluster(&mut h);
    h.finish();
}
