//! Bench: serving-simulator throughput (server iterations,
//! cluster routing, scheduler policies) — the substrate behind Figure 5
//! and Table 8.
//!
//! Besides the usual timing records, this suite writes a machine-readable
//! `BENCH_serving.json` at the workspace root: the three scheduler
//! policies (FCFS / SPF / preemptive) served over the Table 8 cluster
//! workload with a pinned KV pool, with full TTFT / TBT / queue-delay /
//! E2E percentile summaries and the preemptive-vs-FCFS deltas — plus a
//! `prefix_vs_flat` section comparing the prefix-shared, tiered block
//! manager against the flat pool on the shared-system-prompt workload
//! (effective capacity, dedup ratio, preemption rate, p99 TTFT), and an
//! `slo_goodput` section sweeping the multi-turn session trace over
//! {FCFS, SPF, preemptive} × {SLO-blind, SLO-aware} (per-cell goodput,
//! attainment, per-class p99 TTFT, cross-turn dedup), and a `fleet_scale`
//! section timing the ext_fleet 16-replica quick cell at thread widths 1
//! vs 4 (with the hardware's available parallelism recorded so the
//! speedup reads honestly) plus the O(events)-not-O(events × servers)
//! regression numbers for the engine's incremental completion drain.

use rkvc_bench::{workspace_root, Harness};
use rkvc_core::experiments::ext_fleet::{
    fleet_workload, load_patterns, serve_fleet, serve_single_reference, REPLICAS,
};
use rkvc_core::experiments::ext_prefix::{prefix_workload, serve_prefix_workload, variants};
use rkvc_core::experiments::ext_scheduler::serve_workload;
use rkvc_core::experiments::ext_slo::{serve_sessions, session_trace, sweep, SloOutcome};
use rkvc_core::experiments::workloads::{cluster_workload, ClusterWorkload};
use rkvc_core::experiments::RunOptions;
use rkvc_gpu::{DeploymentSpec, EngineKind, GpuSpec, LlmSpec};
use rkvc_kvcache::CompressionConfig;
use rkvc_serving::{
    Cluster, OraclePredictor, RoutingPolicy, SchedulerConfig, ServerSim, ServingMetrics,
    ShardPolicy, SimRequest,
};
use rkvc_tensor::json::{JsonValue, ToJson};
use rkvc_tensor::par;
use std::hint::black_box;
use std::time::Instant;

fn dep() -> DeploymentSpec {
    DeploymentSpec {
        gpu: GpuSpec::a6000(),
        llm: LlmSpec::llama2_7b(),
        engine: EngineKind::LmDeploy,
        tensor_parallel: 1,
    }
}

fn requests(n: usize) -> Vec<SimRequest> {
    (0..n)
        .map(|i| {
            let mut r = SimRequest::new(i as u64, i as f64 * 0.1, 512 + (i % 7) * 128, 64 + (i % 5) * 32);
            r.response_len_by_server = vec![r.response_len, r.response_len * 5 / 4, r.response_len * 5 / 4, r.response_len * 5 / 4];
            r
        })
        .collect()
}

fn bench_server(h: &mut Harness) {
    let mut g = h.group("server_sim_64_requests");
    g.sample_size(10);
    for (name, algo) in [
        ("fp16", CompressionConfig::Fp16),
        ("stream512", CompressionConfig::streaming(64, 448)),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut s = ServerSim::new(0, dep(), algo, 16);
                for r in requests(64) {
                    s.enqueue(r);
                }
                black_box(s.run_to_completion().len())
            })
        });
    }
    g.finish();
}

fn bench_cluster(h: &mut Harness) {
    let mut g = h.group("cluster_4gpu_64_requests");
    g.sample_size(10);
    for policy in RoutingPolicy::all() {
        g.bench_function(policy.label(), |b| {
            b.iter(|| {
                let algo = CompressionConfig::streaming(64, 448);
                let servers = vec![
                    ServerSim::new(0, dep(), CompressionConfig::Fp16, 16),
                    ServerSim::new(1, dep(), algo, 16),
                    ServerSim::new(2, dep(), algo, 16),
                    ServerSim::new(3, dep(), algo, 16),
                ];
                let done = Cluster::new(servers, policy)
                    .expect("four servers")
                    .run(requests(64), &OraclePredictor)
                    .expect("sorted arrivals");
                black_box(done.len())
            })
        });
    }
    g.finish();
}

/// Times each scheduler over the Table 8 workload and returns its served
/// metrics (one representative run per policy — the engine is
/// deterministic, so every iteration produces the same stream).
fn bench_schedulers(
    h: &mut Harness,
    w: &ClusterWorkload,
) -> Vec<(SchedulerConfig, ServingMetrics)> {
    let mut g = h.group("scheduler_table8_quick");
    g.sample_size(5);
    let mut out = Vec::new();
    for sched in SchedulerConfig::all() {
        g.bench_function(sched.label(), |b| {
            b.iter(|| black_box(serve_workload(w, sched).completed))
        });
        out.push((sched, serve_workload(w, sched)));
    }
    g.finish();
    out
}

/// Times each block-manager configuration over the shared-system-prompt
/// workload and returns its outcome (deterministic, so one representative
/// serve per variant).
fn bench_prefix_pool(
    h: &mut Harness,
) -> Vec<(&'static str, rkvc_core::experiments::ext_prefix::PrefixOutcome)> {
    let reqs = prefix_workload(&RunOptions::quick());
    let mut g = h.group("prefix_pool_quick");
    g.sample_size(5);
    let mut out = Vec::new();
    for (label, sharing, tier) in variants() {
        g.bench_function(label, |b| {
            b.iter(|| black_box(serve_prefix_workload(&reqs, sharing, tier).metrics.completed))
        });
        out.push((label, serve_prefix_workload(&reqs, sharing, tier)));
    }
    g.finish();
    out
}

/// Times each (scheduler, SLO policy) cell over the multi-turn session
/// trace and returns its outcome (deterministic, so one representative
/// serve per cell).
fn bench_slo_goodput(
    h: &mut Harness,
) -> Vec<(rkvc_serving::SchedulerConfig, rkvc_serving::SloPolicy, SloOutcome)> {
    let trace = session_trace(&RunOptions::quick());
    let mut g = h.group("slo_sessions_quick");
    g.sample_size(5);
    let mut out = Vec::new();
    for (sched, policy) in sweep() {
        g.bench_function(&format!("{}_{}", sched.label(), policy.label()), |b| {
            b.iter(|| black_box(serve_sessions(&trace, sched, policy).slo.completed))
        });
        out.push((sched, policy, serve_sessions(&trace, sched, policy)));
    }
    g.finish();
    out
}

/// Regression guard for the engine's incremental completion drain: the
/// event loop must cost O(events), not O(events x servers). Per-request
/// load is held constant (64 requests per server, arrivals scaled so each
/// server sees the same rate), so with the watermark drain the ns/request
/// cost stays roughly flat as the cluster widens; with the old per-event
/// `completed().len()` rescan it grew near-linearly in server count.
fn bench_event_scaling(h: &mut Harness) -> JsonValue {
    let mut g = h.group("cluster_event_scaling");
    g.sample_size(5);
    let run_cluster = |servers: usize| -> f64 {
        let n = 64 * servers;
        let reqs: Vec<SimRequest> = (0..n)
            .map(|i| {
                SimRequest::new(
                    i as u64,
                    i as f64 * 0.1 / servers as f64,
                    512 + (i % 7) * 128,
                    64 + (i % 5) * 32,
                )
            })
            .collect();
        let sims: Vec<ServerSim> = (0..servers)
            .map(|i| ServerSim::new(i, dep(), CompressionConfig::streaming(64, 448), 16))
            .collect();
        let t0 = Instant::now();
        let done = Cluster::new(sims, RoutingPolicy::LoadBalance)
            .expect("at least one server")
            .run(reqs, &OraclePredictor)
            .expect("sorted arrivals");
        let dt = t0.elapsed();
        assert_eq!(done.len(), n, "cluster must serve the whole stream");
        dt.as_nanos() as f64 / n as f64
    };
    for servers in [1usize, 16] {
        g.bench_function(&format!("{servers}_servers_64_req_each"), |b| {
            b.iter(|| black_box(run_cluster(servers)))
        });
    }
    g.finish();
    let ns_1 = run_cluster(1);
    let ns_16 = run_cluster(16);
    JsonValue::object(vec![
        ("requests_per_server", 64.to_json()),
        ("ns_per_request_1_server", ns_1.to_json()),
        ("ns_per_request_16_servers", ns_16.to_json()),
        ("ratio_16_vs_1", (ns_16 / ns_1).to_json()),
    ])
}

/// Fleet-layer scaling: the ext_fleet quick cell (uniform load, 16
/// replicas, consistent hashing) timed at `RKVC_THREADS` 1 vs 4 — outputs
/// are byte-identical (the hermetic gate diffs them), only wall time may
/// move — plus simulated-request throughput at 1 vs 16 replicas. The
/// hardware's available parallelism is recorded alongside the speedup so
/// the number reads honestly: on a single-core container the epoch
/// barrier has nothing to fan out over and the expected speedup is ~1x.
fn bench_fleet(h: &mut Harness) -> JsonValue {
    let (_, uniform) = load_patterns()[0];
    let reqs = fleet_workload(&RunOptions::quick(), uniform);
    let n = reqs.len();

    let mut g = h.group("fleet_scale");
    g.sample_size(3);
    g.bench_function("16_replicas_hash", |b| {
        b.iter(|| {
            black_box(
                serve_fleet(reqs.clone(), REPLICAS, ShardPolicy::ConsistentHash, None)
                    .completed
                    .len(),
            )
        })
    });
    g.bench_function("1_replica_reference", |b| {
        b.iter(|| black_box(serve_single_reference(reqs.clone()).completed.len()))
    });
    g.finish();

    let time_fleet = |threads: usize| -> f64 {
        par::set_threads(Some(threads));
        let t0 = Instant::now();
        let out = serve_fleet(reqs.clone(), REPLICAS, ShardPolicy::ConsistentHash, None);
        let dt = t0.elapsed().as_secs_f64();
        black_box(out.completed.len());
        dt
    };
    let wall_1 = time_fleet(1);
    let wall_4 = time_fleet(4);
    par::set_threads(None);

    let t0 = Instant::now();
    let single = serve_single_reference(reqs.clone());
    let single_wall = t0.elapsed().as_secs_f64();
    black_box(single.completed.len());

    let hardware_threads = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    JsonValue::object(vec![
        ("requests", n.to_json()),
        ("replicas", REPLICAS.to_json()),
        ("available_parallelism", hardware_threads.to_json()),
        ("wall_s_threads_1", wall_1.to_json()),
        ("wall_s_threads_4", wall_4.to_json()),
        ("parallel_speedup_4_vs_1", (wall_1 / wall_4).to_json()),
        (
            "requests_per_s_16_replicas",
            (n as f64 / wall_1).to_json(),
        ),
        (
            "requests_per_s_1_replica",
            (n as f64 / single_wall).to_json(),
        ),
    ])
}

fn main() {
    let mut h = Harness::new("serving_sim");
    bench_server(&mut h);
    bench_cluster(&mut h);

    let w = cluster_workload(&RunOptions::quick());
    let metrics = bench_schedulers(&mut h, &w);
    let pools = bench_prefix_pool(&mut h);
    let slo_cells = bench_slo_goodput(&mut h);
    let event_scaling = bench_event_scaling(&mut h);
    let fleet = bench_fleet(&mut h);
    let by_label = |c: SchedulerConfig| -> &ServingMetrics {
        metrics
            .iter()
            .find(|(s, _)| *s == c)
            .map(|(_, m)| m)
            .expect("all schedulers ran")
    };
    let fcfs = by_label(SchedulerConfig::Fcfs);
    let pre = by_label(SchedulerConfig::Preemptive);
    let doc = JsonValue::object(vec![
        ("suite", "serving_sim".to_json()),
        (
            "workload",
            "table8 H2O column, quick scale, combined routing, pool pinned to 3584 \
             tokens/server"
                .to_json(),
        ),
        (
            "schedulers",
            JsonValue::object(
                metrics
                    .iter()
                    .map(|(s, m)| (s.label(), m.to_json()))
                    .collect(),
            ),
        ),
        (
            "preemptive_vs_fcfs",
            JsonValue::object(vec![
                ("preemptions", pre.preemptions.to_json()),
                (
                    "mean_queue_delay_delta_s",
                    (pre.queue_delay.mean() - fcfs.queue_delay.mean()).to_json(),
                ),
                (
                    "mean_ttft_delta_s",
                    (pre.ttft.mean() - fcfs.ttft.mean()).to_json(),
                ),
                (
                    "mean_e2e_delta_s",
                    (pre.e2e.mean() - fcfs.e2e.mean()).to_json(),
                ),
            ]),
        ),
        (
            "prefix_vs_flat",
            JsonValue::object(
                pools
                    .iter()
                    .map(|(label, o)| {
                        (
                            *label,
                            JsonValue::object(vec![
                                ("completed", o.metrics.completed.to_json()),
                                ("effective_capacity", o.peak_batch.to_json()),
                                ("dedup_ratio", o.dedup_ratio.to_json()),
                                ("cow_copies", o.cow_copies.to_json()),
                                ("preemptions", o.metrics.preemptions.to_json()),
                                ("preempt_rate", o.preempt_rate.to_json()),
                                ("demoted_blocks", o.demoted_blocks.to_json()),
                                ("refilled_blocks", o.refilled_blocks.to_json()),
                                ("p99_ttft_s", o.metrics.ttft.p99().to_json()),
                                ("mean_ttft_s", o.metrics.ttft.mean().to_json()),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
        (
            "slo_goodput",
            JsonValue::Object(
                slo_cells
                    .iter()
                    .map(|(sched, policy, o)| {
                        (
                            format!("{}/{}", sched.label(), policy.label()),
                            JsonValue::object(vec![
                                ("completed", o.slo.completed.to_json()),
                                ("attainment", o.slo.attainment().to_json()),
                                ("goodput_tps", o.slo.goodput_tps.to_json()),
                                ("throughput_tps", o.slo.throughput_tps.to_json()),
                                ("preemptions", o.metrics.preemptions.to_json()),
                                ("peak_batch", o.peak_batch.to_json()),
                                ("dedup_ratio", o.dedup_ratio.to_json()),
                                (
                                    "per_class",
                                    JsonValue::object(
                                        o.slo
                                            .per_class
                                            .iter()
                                            .map(|c| {
                                                (
                                                    c.class.label(),
                                                    JsonValue::object(vec![
                                                        ("completed", c.completed.to_json()),
                                                        (
                                                            "attainment",
                                                            c.attainment().to_json(),
                                                        ),
                                                        (
                                                            "p99_ttft_s",
                                                            c.ttft.p99().to_json(),
                                                        ),
                                                        (
                                                            "mean_tbt_s",
                                                            c.tbt.mean().to_json(),
                                                        ),
                                                    ]),
                                                )
                                            })
                                            .collect(),
                                    ),
                                ),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
        (
            "fleet_scale",
            match fleet {
                JsonValue::Object(mut fields) => {
                    fields.push(("event_scaling".to_string(), event_scaling));
                    JsonValue::Object(fields)
                }
                other => other,
            },
        ),
        ("records", h.records().to_json()),
    ]);
    let path = workspace_root().join("BENCH_serving.json");
    match std::fs::write(&path, doc.to_pretty_string()) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
    h.finish();
}
