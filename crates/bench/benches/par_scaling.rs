//! Bench: the deterministic parallel runtime (`rkvc_tensor::par`) and the
//! blocked/fused kernels behind the decode and experiment hot paths.
//!
//! Every comparison pits the predecessor path (naive matmul, per-token
//! prefill, materialize-a-full-f32-view-then-attend) against the current
//! path (register-tiled microkernel over the pool, layer-batched prefill,
//! fused dequant-attention straight off the packed codes), plus an
//! explicit `RKVC_THREADS` sweep. On top of the usual
//! `results/bench_par_scaling.json`, this suite writes a machine-readable
//! `BENCH_par.json` at the workspace root summarizing the speedups and
//! the machine parallelism they were measured at — thread-sweep ratios
//! are only meaningful when the host has cores to scale onto, so the
//! file records that context instead of hiding it.

use rkvc_bench::{workspace_root, Harness};
use rkvc_core::experiments::{run_by_id, RunOptions};
use rkvc_kvcache::{GearCache, GearParams, KiviCache, KiviParams, KvCache};
use rkvc_model::{vocab, GenerateParams, ModelConfig, TinyLm};
use rkvc_tensor::json::{JsonValue, ToJson};
use rkvc_tensor::{par, seeded_rng, Matrix};
use std::hint::black_box;

/// Deterministic dense-ish matrix for the matmul benches.
fn bench_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = seeded_rng(seed);
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols)
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect(),
    )
}

/// The induction prompt shape shared with `model_decode`.
fn copy_prompt(len: usize) -> Vec<usize> {
    let seq: Vec<usize> = (0..len).map(|i| vocab::CONTENT_START + (i * 3) % 56).collect();
    let mut p = vec![vocab::BOS];
    p.extend(&seq);
    p.push(vocab::EOS_SYM);
    p.push(seq[0]);
    p
}

fn bench_matmul(h: &mut Harness, threads: &[usize]) {
    // 96x128x96 sits above PAR_MIN_WORK, so the blocked kernel engages
    // the pool; naive is the seed oracle path.
    let a = bench_matrix(96, 128, 0x9a11);
    let b = bench_matrix(128, 96, 0x9a12);
    let mut g = h.group("matmul_96x128x96");
    g.sample_size(20);
    g.bench_function("seed_naive", |ben| {
        ben.iter(|| black_box(&a).matmul_naive(black_box(&b)))
    });
    for &t in threads {
        par::set_threads(Some(t));
        g.bench_function(format!("blocked_t{t}"), |ben| {
            ben.iter(|| black_box(&a).matmul(black_box(&b)))
        });
    }
    par::set_threads(None);
    g.finish();
}

fn bench_prefill(h: &mut Harness, threads: &[usize]) {
    let model = TinyLm::new(ModelConfig::induction_mha());
    let prompt = copy_prompt(61);
    let mut g = h.group("prefill_fp16_64tok");
    g.sample_size(16);
    g.bench_function("seed_per_token", |b| {
        b.iter(|| {
            let mut s = model.start_session(&rkvc_kvcache::CompressionConfig::Fp16);
            black_box(s.prefill_per_token(black_box(&prompt)).len())
        })
    });
    for &t in threads {
        par::set_threads(Some(t));
        g.bench_function(format!("batched_t{t}"), |b| {
            b.iter(|| {
                let mut s = model.start_session(&rkvc_kvcache::CompressionConfig::Fp16);
                black_box(s.prefill(black_box(&prompt)).len())
            })
        });
    }
    par::set_threads(None);
    g.finish();
}

/// The attend sequence of the memo-view era, replayed faithfully: the
/// memoized `view()` assembled a fresh full-size matrix pair every
/// decode step (zeroed allocation, then row-by-row copies out of the
/// flush-time dequant memos), and the model then ran the naive
/// score/softmax/weighted-sum loops over it. `memo_keys`/`memo_values`
/// stand in for the dropped memos.
fn memo_view_attend(memo_keys: &Matrix, memo_values: &Matrix, q: &[f32], scale: f32, out: &mut [f32]) {
    let n = memo_keys.rows();
    let hd = memo_keys.cols();
    let mut keys = Matrix::zeros(n, hd);
    let mut values = Matrix::zeros(n, hd);
    for r in 0..n {
        keys.row_mut(r).copy_from_slice(memo_keys.row(r));
        values.row_mut(r).copy_from_slice(memo_values.row(r));
    }
    let mut scores = Vec::with_capacity(n);
    for r in 0..n {
        let dot: f32 = keys.row(r).iter().zip(q).map(|(a, b)| a * b).sum();
        scores.push(dot * scale);
    }
    let mut weights = Vec::new();
    rkvc_tensor::softmax_into(&scores, &mut weights);
    out.fill(0.0);
    for (r, &w) in weights.iter().enumerate() {
        for (o, v) in out.iter_mut().zip(values.row(r)) {
            *o += w * v;
        }
    }
}

fn bench_fused_decode(h: &mut Harness) {
    // The decode-step hot loop runs one attention pass per (layer,
    // kv-head) per token. The memo-view era materialized a dense f32 view
    // (flush-time dequant memos, re-assembled into one matrix per step)
    // and looped over it; the fused path decodes packed codes in-register
    // as they are consumed, so nothing of context size is materialized.
    // 4096 retained tokens — the long-context regime KV compression
    // targets, where the full-view rebuild streams ~0.5 MB per step while
    // the fused path reads the ~8x smaller packed stream. Single-threaded;
    // attend is sequential by design.
    let mut rng = seeded_rng(0xdec0de);
    let head_dim = 16;
    let mut kivi = KiviCache::new(head_dim, KiviParams::default()).expect("valid params");
    let mut gear = GearCache::new(head_dim, GearParams::default()).expect("valid params");
    for pos in 0..4096 {
        let k: Vec<f32> = (0..head_dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let v: Vec<f32> = (0..head_dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        kivi.append(&k, &v, pos);
        gear.append(&k, &v, pos);
    }
    let q: Vec<f32> = (0..head_dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let scale = 1.0 / (head_dim as f32).sqrt();
    // Dense f32 twins of the compressed state — what the flush-time memos
    // held resident before they were dropped.
    let kivi_view = kivi.view_uncached();
    let (kivi_keys, kivi_values) = (kivi_view.keys.clone(), kivi_view.values.clone());
    let gear_view = gear.view_uncached();
    let (gear_keys, gear_values) = (gear_view.keys.clone(), gear_view.values.clone());
    drop((kivi_view, gear_view));

    par::set_threads(Some(1));
    let mut g = h.group("fused_decode_4096tok");
    g.sample_size(30);
    let mut out = vec![0.0f32; head_dim];
    let (mut scores, mut weights) = (Vec::new(), Vec::new());
    g.bench_function("kivi_memo_view", |b| {
        b.iter(|| {
            memo_view_attend(&kivi_keys, &kivi_values, black_box(&q), scale, &mut out);
            black_box(out[0])
        })
    });
    g.bench_function("kivi_fused", |b| {
        b.iter(|| {
            out.fill(0.0);
            kivi.attend(black_box(&q), scale, &mut scores, &mut weights, &mut out);
            black_box(out[0])
        })
    });
    g.bench_function("gear_memo_view", |b| {
        b.iter(|| {
            memo_view_attend(&gear_keys, &gear_values, black_box(&q), scale, &mut out);
            black_box(out[0])
        })
    });
    g.bench_function("gear_fused", |b| {
        b.iter(|| {
            out.fill(0.0);
            gear.attend(black_box(&q), scale, &mut scores, &mut weights, &mut out);
            black_box(out[0])
        })
    });
    g.finish();
    par::set_threads(None);
}

fn bench_microkernel(h: &mut Harness) {
    // Register-tiled 4x8 microkernel vs the row-blocked streaming kernel
    // it replaced inside the same decomposition, pinned to one thread so
    // the ratio is pure kernel quality, not pool scaling.
    let a = bench_matrix(96, 128, 0x9a21);
    let b = bench_matrix(128, 96, 0x9a22);
    let bt = bench_matrix(96, 128, 0x9a23);
    par::set_threads(Some(1));
    let mut g = h.group("microkernel_matmul_96x128x96");
    g.sample_size(20);
    g.bench_function("blocked", |ben| {
        ben.iter(|| black_box(&a).matmul_blocked(black_box(&b)))
    });
    g.bench_function("micro", |ben| {
        ben.iter(|| black_box(&a).matmul(black_box(&b)))
    });
    g.bench_function("blocked_transposed", |ben| {
        ben.iter(|| black_box(&a).matmul_transposed_blocked(black_box(&bt)))
    });
    g.bench_function("micro_transposed", |ben| {
        ben.iter(|| black_box(&a).matmul_transposed(black_box(&bt)))
    });
    g.finish();
    par::set_threads(None);
}

fn bench_single_stream_decode(h: &mut Harness) {
    // End-to-end single stream: prefill a prompt, then decode greedily.
    // The KIVI stream crosses several flush boundaries, so the memoized
    // views and scratch-buffer reuse both show up here.
    let model = TinyLm::new(ModelConfig::induction_mha());
    let prompt = copy_prompt(45);
    let algos = [
        ("fp16", rkvc_kvcache::CompressionConfig::Fp16),
        ("kivi4", rkvc_workload::scaled_kivi(4)),
        ("gear4", rkvc_workload::scaled_gear(4)),
    ];
    let mut g = h.group("decode_stream_32tok");
    g.sample_size(10);
    for (name, cfg) in algos {
        g.bench_function(name, |b| {
            b.iter(|| {
                let out = model.generate(black_box(&prompt), &cfg, &GenerateParams::greedy(32));
                black_box(out.response_len())
            })
        });
    }
    g.finish();
}

fn bench_dispatch(h: &mut Harness) {
    // The cost a `par_*` call pays before any real work: one empty job
    // through the persistent pool vs the spawn-and-join of fresh scoped
    // threads that every call paid before the pool existed. Both probes
    // live in `rkvc_tensor::par` (the one sanctioned `std::thread` site);
    // run at width 2 so the comparison holds even on a 1-core machine.
    par::set_threads(Some(2));
    let mut g = h.group("dispatch_overhead");
    g.sample_size(30);
    g.bench_function("pool_handoff", |b| b.iter(par::pool_handoff_probe));
    g.bench_function("spawn_handoff", |b| b.iter(par::spawn_handoff_probe));
    g.finish();
    par::set_threads(None);
}

fn bench_fig1_grid(h: &mut Harness, threads: &[usize]) {
    let opts = RunOptions::quick();
    let mut g = h.group("fig1_grid_quick");
    // The whole quick grid is tens of microseconds (dispatch-gated
    // inline), so medians at small sample counts are dominated by timer
    // noise; a larger sample keeps the t1-vs-topt ratio honest.
    g.sample_size(60);
    for &t in threads {
        par::set_threads(Some(t));
        g.bench_function(format!("t{t}"), |b| {
            b.iter(|| run_by_id("fig1", black_box(&opts)).expect("fig1 exists").tables.len())
        });
    }
    par::set_threads(None);
    g.finish();
}

/// `median(group/base) / median(group/new)` — how many times faster the
/// new path is.
fn speedup(h: &Harness, group: &str, base: &str, new: &str) -> f64 {
    let med = |name: &str| -> f64 {
        h.records()
            .iter()
            .find(|r| r.group == group && r.name == name)
            .map_or(f64::NAN, |r| r.median_ns)
    };
    med(base) / med(new)
}

/// `min(group/base) / min(group/new)` — the noise-robust variant for
/// comparisons whose sides take microseconds each: on a busy host the
/// median absorbs scheduler interference many times the workload itself,
/// while the fastest sample is the workload.
fn speedup_min(h: &Harness, group: &str, base: &str, new: &str) -> f64 {
    let min = |name: &str| -> f64 {
        h.records()
            .iter()
            .find(|r| r.group == group && r.name == name)
            .map_or(f64::NAN, |r| r.min_ns)
    };
    min(base) / min(new)
}

fn main() {
    let machine = par::machine_parallelism();
    let sweep: Vec<usize> = if machine >= 4 { vec![1, 2, 4] } else { vec![1, machine.max(2)] };
    let top = *sweep.last().expect("non-empty sweep");

    let mut h = Harness::new("par_scaling");
    bench_matmul(&mut h, &sweep);
    bench_prefill(&mut h, &sweep);
    bench_fused_decode(&mut h);
    bench_microkernel(&mut h);
    bench_single_stream_decode(&mut h);
    bench_dispatch(&mut h);
    bench_fig1_grid(&mut h, &sweep);

    let median_ns = |group: &str, name: &str| -> f64 {
        h.records()
            .iter()
            .find(|r| r.group == group && r.name == name)
            .map_or(f64::NAN, |r| r.median_ns)
    };
    let pool_dispatch_ns = median_ns("dispatch_overhead", "pool_handoff");
    let spawn_dispatch_ns = median_ns("dispatch_overhead", "spawn_handoff");

    let speedups = JsonValue::object(vec![
        (
            "matmul_blocked_t1_vs_seed_naive",
            speedup(&h, "matmul_96x128x96", "seed_naive", "blocked_t1").to_json(),
        ),
        (
            "matmul_blocked_topt_vs_seed_naive",
            speedup(&h, "matmul_96x128x96", "seed_naive", &format!("blocked_t{top}")).to_json(),
        ),
        (
            "prefill_batched_t1_vs_seed_per_token",
            speedup_min(&h, "prefill_fp16_64tok", "seed_per_token", "batched_t1").to_json(),
        ),
        (
            "prefill_batched_topt_vs_seed_per_token",
            speedup_min(&h, "prefill_fp16_64tok", "seed_per_token", &format!("batched_t{top}"))
                .to_json(),
        ),
        (
            "fused_kivi_decode_vs_memo_view",
            speedup(&h, "fused_decode_4096tok", "kivi_memo_view", "kivi_fused").to_json(),
        ),
        (
            "fused_gear_decode_vs_memo_view",
            speedup(&h, "fused_decode_4096tok", "gear_memo_view", "gear_fused").to_json(),
        ),
        (
            "microkernel_matmul_vs_blocked",
            speedup(&h, "microkernel_matmul_96x128x96", "blocked", "micro").to_json(),
        ),
        (
            "microkernel_matmul_transposed_vs_blocked",
            speedup(&h, "microkernel_matmul_96x128x96", "blocked_transposed", "micro_transposed")
                .to_json(),
        ),
        (
            "fig1_grid_topt_vs_t1",
            speedup_min(&h, "fig1_grid_quick", "t1", &format!("t{top}")).to_json(),
        ),
    ]);
    let doc = JsonValue::object(vec![
        ("suite", "par_scaling".to_json()),
        ("machine_parallelism", machine.to_json()),
        ("thread_sweep", sweep.to_json()),
        ("pool_dispatch_ns", pool_dispatch_ns.to_json()),
        ("spawn_dispatch_ns", spawn_dispatch_ns.to_json()),
        (
            "note",
            "speedups are median-over-median vs the seed single-threaded path; \
             thread-sweep ratios cannot exceed machine_parallelism, so on a \
             low-core host expect topt-vs-t1 near 1.0 (never below ~0.95 — the \
             pool's dispatch cost, pool_dispatch_ns per call, is what bounds \
             the downside; spawn_dispatch_ns is what every call paid before \
             the persistent pool). Dispatch-gated calls below the work \
             threshold run inline and report exactly the t1 time."
                .to_json(),
        ),
        ("speedups", speedups),
        ("records", h.records().to_json()),
    ]);
    let path = workspace_root().join("BENCH_par.json");
    match std::fs::write(&path, doc.to_pretty_string()) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
    h.finish();
}
