//! Bench: TinyLM prefill/decode under each compression policy —
//! the code path behind every accuracy/length experiment.

use rkvc_bench::Harness;
use rkvc_model::{GenerateParams, ModelConfig, TinyLm, vocab};
use std::hint::black_box;

fn copy_prompt(len: usize) -> Vec<usize> {
    let seq: Vec<usize> = (0..len).map(|i| vocab::CONTENT_START + (i * 3) % 56).collect();
    let mut p = vec![vocab::BOS];
    p.extend(&seq);
    p.push(vocab::EOS_SYM);
    p.push(seq[0]);
    p
}

fn bench_generate(h: &mut Harness) {
    let model = TinyLm::new(ModelConfig::induction_mha());
    let prompt = copy_prompt(12);
    let algos = [
        ("fp16", rkvc_kvcache::CompressionConfig::Fp16),
        ("kivi4", rkvc_workload::scaled_kivi(4)),
        ("gear4", rkvc_workload::scaled_gear(4)),
        ("h2o64", rkvc_workload::scaled_h2o(64)),
        ("stream64", rkvc_workload::scaled_streaming(64)),
    ];
    let mut g = h.group("tinylm_generate_12tok");
    g.sample_size(10);
    for (name, cfg) in algos {
        g.bench_function(name, |b| {
            b.iter(|| {
                let out = model.generate(
                    black_box(&prompt),
                    &cfg,
                    &GenerateParams::greedy(16),
                );
                black_box(out.response_len())
            })
        });
    }
    g.finish();
}

fn bench_prefill_scaling(h: &mut Harness) {
    let model = TinyLm::new(ModelConfig::induction_mha());
    let mut g = h.group("tinylm_prefill");
    g.sample_size(10);
    for len in [32usize, 64, 128] {
        let prompt = copy_prompt(len.saturating_sub(3).max(4));
        g.bench_function(len, |b| {
            b.iter(|| {
                let mut s = model.start_session(&rkvc_kvcache::CompressionConfig::Fp16);
                black_box(s.prefill(black_box(&prompt)).len())
            })
        });
    }
    g.finish();
}

fn main() {
    let mut h = Harness::new("model_decode");
    bench_generate(&mut h);
    bench_prefill_scaling(&mut h);
    h.finish();
}
