//! Bench over the Figure 3 quantity: per-algorithm attention-layer
//! execution-time evaluation across prompt/KV lengths and both stages.

use rkvc_bench::Harness;
use rkvc_gpu::{DeploymentSpec, EngineKind, GpuSpec, LlmSpec};
use rkvc_kvcache::CompressionConfig;
use std::hint::black_box;

fn bench_attention_layer(h: &mut Harness) {
    let dep = DeploymentSpec {
        gpu: GpuSpec::a6000(),
        llm: LlmSpec::llama2_7b(),
        engine: EngineKind::LmDeploy,
        tensor_parallel: 1,
    };
    let algos = [
        ("fp16", CompressionConfig::Fp16),
        ("kivi4", CompressionConfig::kivi(4)),
        ("gear4", CompressionConfig::gear(4)),
        ("h2o512", CompressionConfig::h2o(64, 448)),
        ("stream512", CompressionConfig::streaming(64, 448)),
        ("snapkv448", CompressionConfig::snapkv(448)),
        ("tova512", CompressionConfig::tova(512)),
        ("quest512", CompressionConfig::quest(16, 32)),
    ];
    for decode in [false, true] {
        let stage = if decode { "decode" } else { "prefill" };
        let mut g = h.group(format!("fig3_attention_{stage}"));
        g.sample_size(20);
        for (name, cfg) in &algos {
            g.bench_function(name, |b| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for len in [512usize, 1024, 2048, 4096, 8192] {
                        acc += dep.attention_layer_time(black_box(cfg), 1, len, decode);
                    }
                    acc
                })
            });
        }
        g.finish();
    }
}

fn main() {
    let mut h = Harness::new("fig3_attention");
    bench_attention_layer(&mut h);
    h.finish();
}
