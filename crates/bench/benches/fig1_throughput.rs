//! Bench regenerating the Figure 1 quantities: prefill and decode
//! throughput evaluation per engine and per compression algorithm.

use rkvc_bench::Harness;
use rkvc_gpu::{DeploymentSpec, EngineKind, GpuSpec, LlmSpec};
use rkvc_kvcache::CompressionConfig;
use std::hint::black_box;

fn dep(engine: EngineKind) -> DeploymentSpec {
    DeploymentSpec {
        gpu: GpuSpec::a6000(),
        llm: LlmSpec::llama2_7b(),
        engine,
        tensor_parallel: 1,
    }
}

fn bench_engines(h: &mut Harness) {
    let mut g = h.group("fig1ab_engine_decode");
    g.sample_size(20);
    for engine in EngineKind::all() {
        let d = dep(engine);
        g.bench_function(engine.label(), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for batch in [1usize, 4, 8, 16, 32] {
                    acc += d.decode_throughput(
                        black_box(&CompressionConfig::Fp16),
                        black_box(batch),
                        4096,
                    );
                }
                acc
            })
        });
    }
    g.finish();
}

fn bench_algorithms(h: &mut Harness) {
    let d = dep(EngineKind::LmDeploy);
    let algos = [
        ("fp16", CompressionConfig::Fp16),
        ("kivi4", CompressionConfig::kivi(4)),
        ("gear4", CompressionConfig::gear(4)),
        ("h2o512", CompressionConfig::h2o(64, 448)),
        ("stream512", CompressionConfig::streaming(64, 448)),
    ];
    let mut g = h.group("fig1el_algo_sweep");
    g.sample_size(20);
    for (name, cfg) in algos {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for len in [512usize, 1024, 2048, 4096, 8192] {
                    acc += d.prefill_throughput(black_box(&cfg), 1, len);
                    acc += d.decode_throughput(black_box(&cfg), 8, len);
                }
                acc
            })
        });
    }
    g.finish();
}

fn main() {
    let mut h = Harness::new("fig1_throughput");
    bench_engines(&mut h);
    bench_algorithms(&mut h);
    h.finish();
}
