//! Bench over the real compression kernels: quantization
//! round-trips, low-rank factorization, and full cache append/view cycles
//! for every policy.

use rkvc_bench::Harness;
use rkvc_kvcache::{
    dequantize_group, quantize_group, CompressionConfig, GroupLayout, QuantizedMatrix,
    SupportedBits,
};
use rkvc_tensor::{low_rank_approximate, seeded_rng, xavier_matrix, Matrix};
use std::hint::black_box;

fn random_values(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = seeded_rng(seed);
    (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

fn bench_quantizer(h: &mut Harness) {
    let values = random_values(4096, 1);
    let mut g = h.group("quantize_group_4096");
    for bits in [SupportedBits::B1, SupportedBits::B2, SupportedBits::B4, SupportedBits::B8] {
        g.bench_function(format!("{}b", bits.bits()), |b| {
            b.iter(|| quantize_group(black_box(&values), bits))
        });
    }
    g.finish();

    let group = quantize_group(&values, SupportedBits::B4);
    h.bench_function("dequantize_group_4096_4b", |b| {
        b.iter(|| dequantize_group(black_box(&group)))
    });

    let m = Matrix::from_vec(128, 64, random_values(128 * 64, 2));
    let mut g = h.group("quantized_matrix_128x64");
    for (name, layout) in [("per_channel", GroupLayout::PerChannel), ("per_token", GroupLayout::PerToken)] {
        g.bench_function(name, |b| {
            b.iter(|| QuantizedMatrix::quantize(black_box(&m), layout, SupportedBits::B4))
        });
    }
    g.finish();
}

fn bench_low_rank(h: &mut Harness) {
    let mut rng = seeded_rng(3);
    let m = xavier_matrix(64, 64, &mut rng);
    let mut g = h.group("low_rank_64x64");
    g.sample_size(20);
    for rank in [1usize, 2, 4, 8] {
        g.bench_function(rank, |b| {
            b.iter(|| low_rank_approximate(black_box(&m), rank, 6).unwrap())
        });
    }
    g.finish();
}

fn bench_cache_policies(h: &mut Harness) {
    let algos = [
        ("fp16", CompressionConfig::Fp16),
        ("kivi4", rkvc_workload::scaled_kivi(4)),
        ("gear4", rkvc_workload::scaled_gear(4)),
        ("h2o64", rkvc_workload::scaled_h2o(64)),
        ("stream64", rkvc_workload::scaled_streaming(64)),
        ("snapkv48", CompressionConfig::snapkv(48)),
        ("tova64", CompressionConfig::tova(64)),
        ("quest64", CompressionConfig::quest(8, 8)),
    ];
    let keys = random_values(64, 4);
    let vals = random_values(64, 5);
    let mut g = h.group("cache_append_observe_view_256");
    g.sample_size(10);
    for (name, cfg) in algos {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut cache = cfg.build(64);
                for pos in 0..256 {
                    cache.append(&keys, &vals, pos);
                    let n = cache.len();
                    cache.observe_attention(&vec![1.0 / n as f32; n]);
                }
                cache.finish_prefill();
                black_box(cache.view().len())
            })
        });
    }
    g.finish();
}

fn main() {
    let mut h = Harness::new("compression_kernels");
    bench_quantizer(&mut h);
    bench_low_rank(&mut h);
    bench_cache_policies(&mut h);
    h.finish();
}
