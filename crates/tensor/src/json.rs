//! Minimal, dependency-free JSON substrate.
//!
//! Replaces `serde`/`serde_json` for the workspace's needs: persisting
//! experiment reports under `results/`, round-tripping configuration
//! structs, and golden-file determinism tests. The printer is fully
//! deterministic — object fields keep insertion order and floats print
//! with Rust's shortest-round-trip formatting — so two runs with the same
//! seed produce byte-identical files.
//!
//! Serialization is driven by the [`ToJson`] / [`FromJson`] trait pair.
//! Structs and fieldless enums get implementations from the
//! [`json_struct!`](crate::json_struct) and
//! [`json_unit_enum!`](crate::json_unit_enum) macros; data-carrying enums
//! write the two impls by hand (see `CompressionConfig` in `rkvc-kvcache`
//! for the idiom).
//!
//! # Examples
//!
//! ```
//! use rkvc_tensor::json::{JsonValue, ToJson};
//!
//! let v = vec![1u32, 2, 3].to_json();
//! assert_eq!(v.to_compact_string(), "[1,2,3]");
//! let back = JsonValue::parse("[1, 2, 3]").unwrap();
//! assert_eq!(back, v);
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed or constructed JSON document.
///
/// Integers and floats are separate variants so that `7` and `7.0`
/// round-trip through text without changing representation (mirroring
/// `serde_json`'s distinction).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without a fraction or exponent part.
    Int(i64),
    /// A number with a fraction or exponent part. Always finite: JSON has
    /// no NaN/Infinity literals and the parser rejects them.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object. Fields keep insertion order (deterministic printing);
    /// lookup is linear, which is fine at config/report scale.
    Object(Vec<(String, JsonValue)>),
}

/// Error from parsing or from [`FromJson`] conversions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    msg: String,
}

impl JsonError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        JsonError { msg: msg.into() }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Builds an object value from `(key, value)` pairs.
    pub fn object(fields: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        )
    }

    /// The fields if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value if this is a number (int or float).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(i) => Some(*i as f64),
            JsonValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The integer value if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The boolean value if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object field lookup by key.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// One-word description of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "bool",
            JsonValue::Int(_) => "int",
            JsonValue::Float(_) => "float",
            JsonValue::Str(_) => "string",
            JsonValue::Array(_) => "array",
            JsonValue::Object(_) => "object",
        }
    }

    /// Compact single-line rendering (no whitespace).
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation and a trailing-newline-
    /// free body, matching `serde_json` pretty output.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            JsonValue::Float(f) => write_f64(out, *f),
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            JsonValue::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (recursive descent).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] naming the byte offset for syntax errors,
    /// trailing garbage, non-finite numbers, or invalid escapes.
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.parse_value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

/// Prints a finite f64 so it re-parses as a float: Rust's `{:?}` shortest
/// round-trip form always includes a `.` or an exponent.
fn write_f64(out: &mut String, f: f64) {
    debug_assert!(f.is_finite(), "non-finite float reached the printer");
    if f.is_finite() {
        let _ = write!(out, "{f:?}");
    } else {
        // Defensive: JSON has no non-finite literals; serde_json emits
        // null here and we follow suit in release builds.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", JsonValue::Null),
            Some(b't') => self.eat_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.eat_literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require a low surrogate.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u')?;
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000
                                    + ((hi - 0xD800) << 10)
                                    + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            let f: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
            if !f.is_finite() {
                return Err(self.err("non-finite number"));
            }
            Ok(JsonValue::Float(f))
        } else {
            match text.parse::<i64>() {
                Ok(i) => Ok(JsonValue::Int(i)),
                // Integer literal overflowing i64: keep the magnitude as
                // a float rather than failing the parse.
                Err(_) => {
                    let f: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
                    if !f.is_finite() {
                        return Err(self.err("non-finite number"));
                    }
                    Ok(JsonValue::Float(f))
                }
            }
        }
    }
}

/// Conversion into a [`JsonValue`] (the `Serialize` replacement).
pub trait ToJson {
    /// Renders `self` as a JSON value.
    fn to_json(&self) -> JsonValue;
}

/// Conversion from a [`JsonValue`] (the `Deserialize` replacement).
pub trait FromJson: Sized {
    /// Reconstructs `Self`, erroring on shape/type mismatches.
    fn from_json(v: &JsonValue) -> Result<Self, JsonError>;
}

/// Serializes to compact JSON text (`serde_json::to_string` analogue).
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_compact_string()
}

/// Serializes to pretty JSON text (`serde_json::to_string_pretty`
/// analogue).
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_pretty_string()
}

/// Parses JSON text into a typed value (`serde_json::from_str` analogue).
///
/// # Errors
///
/// Returns a [`JsonError`] on syntax errors or shape mismatches.
pub fn from_str<T: FromJson>(s: &str) -> Result<T, JsonError> {
    T::from_json(&JsonValue::parse(s)?)
}

/// Looks up and converts an object field; a missing key converts from
/// `null` (so `Option<T>` fields default to `None`).
pub fn field<T: FromJson>(
    fields: &[(String, JsonValue)],
    name: &str,
) -> Result<T, JsonError> {
    match fields.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_json(v)
            .map_err(|e| JsonError::new(format!("field '{name}': {e}"))),
        None => T::from_json(&JsonValue::Null)
            .map_err(|_| JsonError::new(format!("missing field '{name}'"))),
    }
}

impl ToJson for JsonValue {
    fn to_json(&self) -> JsonValue {
        self.clone()
    }
}

impl FromJson for JsonValue {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        v.as_bool()
            .ok_or_else(|| JsonError::new(format!("expected bool, got {}", v.kind())))
    }
}

impl ToJson for String {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.to_owned())
    }
}

impl FromJson for String {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| JsonError::new(format!("expected string, got {}", v.kind())))
    }
}

macro_rules! int_json {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> JsonValue {
                JsonValue::Int(i64::try_from(*self).expect("integer exceeds i64 range"))
            }
        }
        impl FromJson for $t {
            fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
                let i = v.as_i64().ok_or_else(|| {
                    JsonError::new(format!("expected integer, got {}", v.kind()))
                })?;
                <$t>::try_from(i)
                    .map_err(|_| JsonError::new(format!("integer {i} out of range")))
            }
        }
    )+};
}

int_json!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> JsonValue {
        if self.is_finite() {
            JsonValue::Float(*self)
        } else {
            // serde_json serializes non-finite floats as null; keep that
            // behavior so reports never contain invalid JSON.
            JsonValue::Null
        }
    }
}

impl FromJson for f64 {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        v.as_f64()
            .ok_or_else(|| JsonError::new(format!("expected number, got {}", v.kind())))
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> JsonValue {
        (*self as f64).to_json()
    }
}

impl FromJson for f32 {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        Ok(f64::from_json(v)? as f32)
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        v.as_array()
            .ok_or_else(|| JsonError::new(format!("expected array, got {}", v.kind())))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> JsonValue {
        match self {
            Some(v) => v.to_json(),
            None => JsonValue::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        match v {
            JsonValue::Null => Ok(None),
            other => Ok(Some(T::from_json(other)?)),
        }
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> JsonValue {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Box<T> {
    fn to_json(&self) -> JsonValue {
        (**self).to_json()
    }
}

impl<T: FromJson> FromJson for Box<T> {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        Ok(Box::new(T::from_json(v)?))
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        let items = v
            .as_array()
            .ok_or_else(|| JsonError::new("expected 2-element array"))?;
        if items.len() != 2 {
            return Err(JsonError::new("expected 2-element array"));
        }
        Ok((A::from_json(&items[0])?, B::from_json(&items[1])?))
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(vec![
            self.0.to_json(),
            self.1.to_json(),
            self.2.to_json(),
        ])
    }
}

impl<A: FromJson, B: FromJson, C: FromJson> FromJson for (A, B, C) {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        let items = v
            .as_array()
            .ok_or_else(|| JsonError::new("expected 3-element array"))?;
        if items.len() != 3 {
            return Err(JsonError::new("expected 3-element array"));
        }
        Ok((
            A::from_json(&items[0])?,
            B::from_json(&items[1])?,
            C::from_json(&items[2])?,
        ))
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl<V: FromJson> FromJson for BTreeMap<String, V> {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        v.as_object()
            .ok_or_else(|| JsonError::new(format!("expected object, got {}", v.kind())))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_json(v)?)))
            .collect()
    }
}

/// Implements [`ToJson`]/[`FromJson`] for a struct with named fields,
/// serializing as an object in declaration order.
///
/// ```
/// #[derive(Debug, PartialEq)]
/// struct Point { x: f64, y: f64 }
/// rkvc_tensor::json_struct!(Point { x, y });
///
/// use rkvc_tensor::json;
/// let p = Point { x: 1.5, y: -2.0 };
/// let text = json::to_string(&p);
/// assert_eq!(text, r#"{"x":1.5,"y":-2.0}"#);
/// assert_eq!(json::from_str::<Point>(&text).unwrap(), p);
/// ```
#[macro_export]
macro_rules! json_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::JsonValue {
                $crate::json::JsonValue::Object(vec![
                    $( (stringify!($field).to_owned(),
                        $crate::json::ToJson::to_json(&self.$field)), )+
                ])
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(
                v: &$crate::json::JsonValue,
            ) -> Result<Self, $crate::json::JsonError> {
                let fields = v.as_object().ok_or_else(|| {
                    $crate::json::JsonError::new(concat!(
                        "expected object for ", stringify!($ty)
                    ))
                })?;
                Ok($ty {
                    $( $field: $crate::json::field(fields, stringify!($field))?, )+
                })
            }
        }
    };
}

/// Implements [`ToJson`] only, for structs holding borrowed data
/// (`&'static str` tables and the like) that are serialized into reports
/// but never parsed back.
///
/// ```
/// struct Row { name: &'static str, score: f64 }
/// rkvc_tensor::json_to_struct!(Row { name, score });
///
/// use rkvc_tensor::json;
/// assert_eq!(json::to_string(&Row { name: "a", score: 1.0 }),
///            r#"{"name":"a","score":1.0}"#);
/// ```
#[macro_export]
macro_rules! json_to_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::JsonValue {
                $crate::json::JsonValue::Object(vec![
                    $( (stringify!($field).to_owned(),
                        $crate::json::ToJson::to_json(&self.$field)), )+
                ])
            }
        }
    };
}

/// Implements [`ToJson`]/[`FromJson`] for a fieldless enum, serializing
/// each variant as its name string (serde's default for unit variants).
///
/// ```
/// #[derive(Debug, PartialEq)]
/// enum Mode { Fast, Careful }
/// rkvc_tensor::json_unit_enum!(Mode { Fast, Careful });
///
/// use rkvc_tensor::json;
/// assert_eq!(json::to_string(&Mode::Fast), "\"Fast\"");
/// assert_eq!(json::from_str::<Mode>("\"Careful\"").unwrap(), Mode::Careful);
/// ```
#[macro_export]
macro_rules! json_unit_enum {
    ($ty:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::JsonValue {
                let name = match self {
                    $( $ty::$variant => stringify!($variant), )+
                };
                $crate::json::JsonValue::Str(name.to_owned())
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(
                v: &$crate::json::JsonValue,
            ) -> Result<Self, $crate::json::JsonError> {
                let s = v.as_str().ok_or_else(|| {
                    $crate::json::JsonError::new(concat!(
                        "expected string for ", stringify!($ty)
                    ))
                })?;
                match s {
                    $( stringify!($variant) => Ok($ty::$variant), )+
                    other => Err($crate::json::JsonError::new(format!(
                        "unknown {} variant '{}'", stringify!($ty), other
                    ))),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse("-42").unwrap(), JsonValue::Int(-42));
        assert_eq!(JsonValue::parse("2.5e3").unwrap(), JsonValue::Float(2500.0));
        assert_eq!(
            JsonValue::parse("\"hi\"").unwrap(),
            JsonValue::Str("hi".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = JsonValue::parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0], JsonValue::Int(1));
        assert_eq!(arr[1].get("b"), Some(&JsonValue::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "tru", "1 2", "NaN", "Infinity",
            "-Infinity", "{\"a\":}", "\"unterminated", "\"bad \\q escape\"",
            "01a",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn rejects_non_finite_numbers() {
        assert!(JsonValue::parse("1e999").is_err());
        assert!(JsonValue::parse("-1e999").is_err());
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(f64::NAN.to_json(), JsonValue::Null);
        assert_eq!(f64::INFINITY.to_json(), JsonValue::Null);
        assert_eq!(f32::NEG_INFINITY.to_json(), JsonValue::Null);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line1\nline2\ttab \"quoted\" back\\slash \u{1}ctl \u{1F600}emoji";
        let v = JsonValue::Str(s.to_owned());
        let printed = v.to_compact_string();
        assert_eq!(JsonValue::parse(&printed).unwrap(), v);
    }

    #[test]
    fn surrogate_pair_escapes_decode() {
        let v = JsonValue::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
        assert!(JsonValue::parse("\"\\ud83d\"").is_err());
        assert!(JsonValue::parse("\"\\ud83d\\u0041\"").is_err());
    }

    #[test]
    fn pretty_format_matches_expected_shape() {
        let v = JsonValue::object(vec![
            ("name", JsonValue::Str("fig1".into())),
            (
                "xs",
                JsonValue::Array(vec![JsonValue::Int(1), JsonValue::Int(2)]),
            ),
            ("empty", JsonValue::Array(vec![])),
        ]);
        let expected = "{\n  \"name\": \"fig1\",\n  \"xs\": [\n    1,\n    2\n  ],\n  \"empty\": []\n}";
        assert_eq!(v.to_pretty_string(), expected);
        assert_eq!(JsonValue::parse(expected).unwrap(), v);
    }

    #[test]
    fn ints_and_floats_stay_distinct_through_text() {
        let v = JsonValue::Array(vec![JsonValue::Int(7), JsonValue::Float(7.0)]);
        let text = v.to_compact_string();
        assert_eq!(text, "[7,7.0]");
        assert_eq!(JsonValue::parse(&text).unwrap(), v);
    }

    #[test]
    fn typed_round_trips() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let text = to_string(&v);
        assert_eq!(text, "[1,null,3]");
        assert_eq!(from_str::<Vec<Option<u32>>>(&text).unwrap(), v);

        let pairs: Vec<(String, f64)> = vec![("a".into(), 0.5), ("b".into(), -1.0)];
        let text = to_string(&pairs);
        assert_eq!(from_str::<Vec<(String, f64)>>(&text).unwrap(), pairs);
    }

    #[test]
    fn type_mismatches_error_cleanly() {
        assert!(from_str::<u32>("\"seven\"").is_err());
        assert!(from_str::<u32>("-1").is_err());
        assert!(from_str::<String>("17").is_err());
        assert!(from_str::<Vec<u8>>("{\"a\":1}").is_err());
    }

    #[test]
    fn struct_and_enum_macros_round_trip() {
        #[derive(Debug, PartialEq)]
        struct Demo {
            id: String,
            count: usize,
            ratio: f64,
            tags: Vec<String>,
        }
        json_struct!(Demo { id, count, ratio, tags });

        #[derive(Debug, PartialEq)]
        enum Color {
            Red,
            Green,
        }
        json_unit_enum!(Color { Red, Green });

        let d = Demo {
            id: "x".into(),
            count: 3,
            ratio: 0.5,
            tags: vec!["a".into()],
        };
        let text = to_string_pretty(&d);
        assert_eq!(from_str::<Demo>(&text).unwrap(), d);

        assert_eq!(to_string(&Color::Green), "\"Green\"");
        assert_eq!(from_str::<Color>("\"Red\"").unwrap(), Color::Red);
        assert!(from_str::<Color>("\"Blue\"").is_err());
    }

    #[test]
    fn btreemap_output_is_key_sorted() {
        let mut m = BTreeMap::new();
        m.insert("zeta".to_owned(), 1u32);
        m.insert("alpha".to_owned(), 2u32);
        assert_eq!(to_string(&m), r#"{"alpha":2,"zeta":1}"#);
    }
}
