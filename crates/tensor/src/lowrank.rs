//! Low-rank matrix approximation via orthogonal-iteration (block power
//! method).
//!
//! GEAR (Kang et al., 2024) approximates the KV quantization error with a
//! rank-`r` matrix. This module provides that factorization: given `M`, find
//! `U (m x r)` and `V (r x n)` with `U V ≈ M` minimizing Frobenius error for
//! the chosen rank (up to iteration convergence).

use crate::{seeded_rng, xavier_matrix, Matrix, TensorError};

/// A rank-`r` factorization `U * V` of a matrix.
#[derive(Debug, Clone, PartialEq)]
// rkvc-allow(C001): return type of low_rank_approximate; consumers bind it without naming the type
pub struct LowRankFactors {
    /// Left factor, `m x r`.
    pub u: Matrix,
    /// Right factor, `r x n`.
    pub v: Matrix,
}

impl LowRankFactors {
    /// Reconstructs the rank-`r` approximation `U * V`.
    pub fn reconstruct(&self) -> Matrix {
        self.u.matmul(&self.v)
    }

    /// Rank of the factorization.
    pub fn rank(&self) -> usize {
        self.u.cols()
    }

    /// Number of f32 values stored by the factors (storage cost proxy).
    pub fn stored_values(&self) -> usize {
        self.u.len() + self.v.len()
    }
}

/// Computes a rank-`rank` approximation of `m` using orthogonal iteration.
///
/// Runs `iters` rounds of the block power method on `M Mᵀ` with Gram-Schmidt
/// re-orthogonalization; 4-8 iterations are plenty for the error-correction
/// use case.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] if `rank == 0` or `rank` exceeds
/// `min(rows, cols)`.
///
/// # Examples
///
/// ```
/// use rkvc_tensor::{low_rank_approximate, Matrix};
/// // A rank-1 matrix is reconstructed exactly.
/// let m = Matrix::from_rows(&[&[2.0, 4.0], &[1.0, 2.0]]);
/// let f = low_rank_approximate(&m, 1, 8)?;
/// assert!(f.reconstruct().sub(&m).frobenius_norm() < 1e-3);
/// # Ok::<(), rkvc_tensor::TensorError>(())
/// ```
pub fn low_rank_approximate(
    m: &Matrix,
    rank: usize,
    iters: usize,
) -> Result<LowRankFactors, TensorError> {
    if rank == 0 {
        return Err(TensorError::InvalidArgument("rank must be >= 1"));
    }
    if rank > m.rows().min(m.cols()) {
        return Err(TensorError::InvalidArgument(
            "rank exceeds min(rows, cols)",
        ));
    }

    // Start from a random orthonormalized basis Q (m x rank).
    let mut rng = seeded_rng(0x9e3779b97f4a7c15);
    let mut q = xavier_matrix(m.rows(), rank, &mut rng);
    orthonormalize_columns(&mut q);

    let mt = m.transposed();
    for _ in 0..iters.max(1) {
        // Q <- orth(M Mᵀ Q)
        let z = mt.matmul(&q); // n x r
        let mut w = m.matmul(&z); // m x r
        orthonormalize_columns(&mut w);
        q = w;
    }

    // U = Q, V = Qᵀ M  (projection onto the subspace spanned by Q).
    let v = q.transposed().matmul(m);
    Ok(LowRankFactors { u: q, v })
}

/// Gram-Schmidt orthonormalization of the columns of `q` in place. Columns
/// that collapse to (near) zero are re-seeded with a unit basis vector.
fn orthonormalize_columns(q: &mut Matrix) {
    let (rows, cols) = q.shape();
    for c in 0..cols {
        // Subtract projections onto previous columns.
        for prev in 0..c {
            let mut dot = 0.0;
            for r in 0..rows {
                dot += q.get(r, c) * q.get(r, prev);
            }
            for r in 0..rows {
                let v = q.get(r, c) - dot * q.get(r, prev);
                q.set(r, c, v);
            }
        }
        let mut norm = 0.0;
        for r in 0..rows {
            norm += q.get(r, c) * q.get(r, c);
        }
        let norm = norm.sqrt();
        if norm > 1e-12 {
            for r in 0..rows {
                q.set(r, c, q.get(r, c) / norm);
            }
        } else {
            // Degenerate direction: fall back to a unit vector.
            for r in 0..rows {
                q.set(r, c, if r == c % rows.max(1) { 1.0 } else { 0.0 });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rank_k_matrix(m: usize, n: usize, k: usize, seed: u64) -> Matrix {
        let mut rng = seeded_rng(seed);
        let a = xavier_matrix(m, k, &mut rng);
        let b = xavier_matrix(k, n, &mut rng);
        a.matmul(&b)
    }

    #[test]
    fn exact_recovery_of_low_rank_matrix() {
        let m = rank_k_matrix(12, 9, 2, 5);
        let f = low_rank_approximate(&m, 2, 12).unwrap();
        let err = f.reconstruct().sub(&m).frobenius_norm();
        assert!(err < 1e-3 * m.frobenius_norm().max(1.0), "err={err}");
    }

    #[test]
    fn higher_rank_reduces_error_monotonically() {
        let mut rng = seeded_rng(11);
        let m = xavier_matrix(16, 16, &mut rng);
        let mut last = f32::INFINITY;
        for rank in [1, 2, 4, 8] {
            let f = low_rank_approximate(&m, rank, 10).unwrap();
            let err = f.reconstruct().sub(&m).frobenius_norm();
            assert!(err <= last + 1e-4, "rank {rank}: {err} > {last}");
            last = err;
        }
    }

    #[test]
    fn full_rank_recovers_exactly() {
        let mut rng = seeded_rng(13);
        let m = xavier_matrix(6, 6, &mut rng);
        let f = low_rank_approximate(&m, 6, 30).unwrap();
        let err = f.reconstruct().sub(&m).frobenius_norm();
        assert!(err < 1e-3, "err={err}");
    }

    #[test]
    fn rejects_invalid_rank() {
        let m = Matrix::zeros(4, 4);
        assert!(low_rank_approximate(&m, 0, 4).is_err());
        assert!(low_rank_approximate(&m, 5, 4).is_err());
    }

    #[test]
    fn factors_report_storage() {
        let m = rank_k_matrix(10, 8, 2, 7);
        let f = low_rank_approximate(&m, 2, 8).unwrap();
        assert_eq!(f.rank(), 2);
        assert_eq!(f.stored_values(), 10 * 2 + 2 * 8);
    }
}
