//! Deterministic random initialization helpers.
//!
//! All randomness in the workspace flows through seeded [`SeededRng`]
//! instances (the in-repo PCG64 generator from [`crate::det`]) so every
//! experiment is bit-reproducible and the build stays offline.

use crate::det;
use crate::Matrix;

/// The deterministic RNG used across the workspace.
pub type SeededRng = det::SeededRng;

/// Creates a deterministic RNG from a `u64` seed.
///
/// # Examples
///
/// ```
/// let mut a = rkvc_tensor::seeded_rng(7);
/// let mut b = rkvc_tensor::seeded_rng(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> SeededRng {
    SeededRng::new(seed)
}

/// Samples a `rows x cols` matrix with Xavier/Glorot-uniform entries:
/// `U(-sqrt(6/(rows+cols)), +sqrt(6/(rows+cols)))`.
///
/// Used for TinyLM's synthetic weights; the scale keeps activations and
/// logits in a numerically healthy range across layers.
pub fn xavier_matrix(rows: usize, cols: usize, rng: &mut SeededRng) -> Matrix {
    let bound = (6.0 / (rows + cols).max(1) as f32).sqrt();
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-bound..=bound))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_matrix() {
        let a = xavier_matrix(4, 5, &mut seeded_rng(42));
        let b = xavier_matrix(4, 5, &mut seeded_rng(42));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_matrix() {
        let a = xavier_matrix(4, 5, &mut seeded_rng(1));
        let b = xavier_matrix(4, 5, &mut seeded_rng(2));
        assert_ne!(a, b);
    }

    #[test]
    fn xavier_entries_within_bound() {
        let m = xavier_matrix(16, 16, &mut seeded_rng(3));
        let bound = (6.0 / 32.0f32).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= bound));
    }
}
