//! Row-major dense f32 matrix.

use crate::json::{self, FromJson, JsonError, JsonValue, ToJson};

/// A row-major dense matrix of `f32` values.
///
/// This is the workhorse container for TinyLM weights, KV tensors, and the
/// quantizer/error-correction math. It intentionally stays small: the
/// reproduction only needs 2-D tensors (batch/sequence dimensions are
/// handled by the caller looping over matrices).
///
/// # Examples
///
/// ```
/// use rkvc_tensor::Matrix;
///
/// let m = Matrix::zeros(2, 3);
/// assert_eq!(m.shape(), (2, 3));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl ToJson for Matrix {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("rows", self.rows.to_json()),
            ("cols", self.cols.to_json()),
            ("data", self.data.to_json()),
        ])
    }
}

impl FromJson for Matrix {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        let fields = v
            .as_object()
            .ok_or_else(|| JsonError::new("expected object for Matrix"))?;
        let rows: usize = json::field(fields, "rows")?;
        let cols: usize = json::field(fields, "cols")?;
        let data: Vec<f32> = json::field(fields, "data")?;
        if data.len() != rows * cols {
            return Err(JsonError::new(format!(
                "matrix buffer length {} does not match {rows}x{cols}",
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }
}

/// Output rows per parallel chunk in the blocked matmul kernels.
const MATMUL_ROW_BLOCK: usize = 8;

/// `k`-panel width: a panel of the right-hand matrix
/// (`K_PANEL x cols` floats) stays cache-resident while a block of
/// output rows streams over it.
const K_PANEL: usize = 64;

/// Register-tile height of the microkernel: output rows whose partial
/// sums stay in the accumulator block.
const MR: usize = 4;

/// Register-tile width of the microkernel: output columns per
/// accumulator block. `MR x NR = 32` f32 accumulators occupy eight
/// 4-wide vector registers on the baseline x86-64/SSE2 target (half the
/// register file), leaving room for the streamed `b` tile and the
/// broadcast `a` values; wider tiles spill, narrower ones leave the
/// vector units idle.
const NR: usize = 8;

// --- grain_for `item_ops` audit -----------------------------------------
//
// [`crate::par::grain_for`] sizes parallel chunks from an *ops* estimate
// so the inline/parallel decision is a pure function of shape — never of
// wall-clock, which would break run-to-run determinism. These constants
// are therefore part of the dispatch contract and each one is audited
// against the kernel it describes, instead of every kernel inheriting
// the plain-matmul value as before.

/// Per multiply-add estimate for the register-tiled microkernels
/// ([`Matrix::matmul`], [`Matrix::matmul_transposed`]): one multiply plus
/// one add, with operand loads and the accumulator spill amortized across
/// the `MR x NR` tile. The row-streaming kernel behind
/// [`Matrix::matmul_blocked`] retires MACs at essentially the same rate
/// (its j-inner loop vectorizes and streams), so it shares the constant.
const MICRO_OPS_PER_MAC: usize = 2;

/// Per multiply-add estimate for the serial-dot kernel retained in
/// [`Matrix::matmul_transposed_blocked`]: a single scalar accumulator
/// chains every add, so the loop is latency-bound and retires roughly a
/// third of the streaming kernels' rate. This path previously inherited
/// `MICRO_OPS_PER_MAC`-style matmul constants, under-estimating per-row
/// cost and keeping chunks inline past the point where fan-out pays.
const SCALAR_DOT_OPS_PER_MAC: usize = 6;

/// Rows per parallel chunk for a matmul-shaped kernel: sized by
/// [`crate::par::grain_for`] from the per-row flop estimate, snapped up to
/// [`MATMUL_ROW_BLOCK`] so each chunk amortizes its k-panel sweep. Returns
/// `rows` (single chunk → inline) whenever the whole product is below the
/// dispatch threshold. Pure in the shape, so the inline/parallel decision
/// is thread-count-invariant.
fn matmul_rows_per_chunk(rows: usize, row_ops: usize) -> usize {
    let rpc = crate::par::grain_for(rows, row_ops);
    if rpc >= rows {
        rows
    } else {
        rpc.max(MATMUL_ROW_BLOCK).min(rows)
    }
}

/// Accumulates `a[i0.., :] * b` into `out_chunk` (a block of contiguous
/// output rows), tiling over k-panels. Panels ascend, and within a panel
/// every output element adds its terms in ascending-`k` order in place —
/// exactly the naive i-k-j association, so results are bit-identical to
/// [`Matrix::matmul_naive`] for any block size.
fn matmul_rows_into(a: &[f32], a_cols: usize, b: &[f32], cols: usize, i0: usize, out_chunk: &mut [f32]) {
    let rows_here = out_chunk.len() / cols;
    for k0 in (0..a_cols).step_by(K_PANEL) {
        let k_end = (k0 + K_PANEL).min(a_cols);
        for i in 0..rows_here {
            let a_row = &a[(i0 + i) * a_cols..(i0 + i + 1) * a_cols];
            let out_row = &mut out_chunk[i * cols..(i + 1) * cols];
            for (k, &av) in a_row.iter().enumerate().take(k_end).skip(k0) {
                if av == 0.0 {
                    continue;
                }
                let b_row = &b[k * cols..k * cols + cols];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
    }
}

/// Scalar tail for the microkernel: accumulates columns `j0..` of one
/// output row over the k-panel `k0..k_end`, ascending `k` with the naive
/// zero-skip. This is the same per-element term order as the register
/// tile, so full tiles and tails compose into one bit-exact kernel.
fn matmul_row_tail(
    a: &[f32],
    a_cols: usize,
    b: &[f32],
    cols: usize,
    ai: usize,
    k0: usize,
    k_end: usize,
    j0: usize,
    out_row: &mut [f32],
) {
    let a_row = &a[ai * a_cols..(ai + 1) * a_cols];
    for (k, &av) in a_row.iter().enumerate().take(k_end).skip(k0) {
        if av == 0.0 {
            continue;
        }
        let b_row = &b[k * cols + j0..(k + 1) * cols];
        for (o, &bv) in out_row[j0..].iter_mut().zip(b_row) {
            *o += av * bv;
        }
    }
}

/// Register-tiled inner kernel for [`Matrix::matmul`]: within each
/// k-panel the output is walked in `MR x NR` tiles whose 16 partial sums
/// live in a register accumulator block, amortizing loads and stores
/// across the tile instead of re-touching the output row once per `k`
/// like [`matmul_rows_into`]. Tiling only changes *which element* is
/// advanced next — every output element still adds its terms in
/// ascending-`k` order with the `av == 0.0` skip of
/// [`Matrix::matmul_naive`] applied per `(row, k)` — and spilling an
/// accumulator between k-panels stores the exact f32, so the result is
/// bit-identical to the naive oracle for any tile or panel size.
fn matmul_rows_into_micro(
    a: &[f32],
    a_cols: usize,
    b: &[f32],
    cols: usize,
    i0: usize,
    out_chunk: &mut [f32],
) {
    let rows_here = out_chunk.len() / cols;
    for k0 in (0..a_cols).step_by(K_PANEL) {
        let k_end = (k0 + K_PANEL).min(a_cols);
        let b_panel = &b[k0 * cols..k_end * cols];
        let mut i = 0;
        while i + MR <= rows_here {
            // Panel sub-rows of the MR `a` rows, bound once per stripe so
            // the k loop below is pure pointer bumps with no index math
            // or bounds checks on the hot operands.
            let ar = |r: usize| &a[(i0 + i + r) * a_cols + k0..(i0 + i + r) * a_cols + k_end];
            let (a0, a1, a2, a3) = (ar(0), ar(1), ar(2), ar(3));
            let mut j = 0;
            while j + NR <= cols {
                let mut acc0 = [0.0f32; NR];
                let mut acc1 = [0.0f32; NR];
                let mut acc2 = [0.0f32; NR];
                let mut acc3 = [0.0f32; NR];
                acc0.copy_from_slice(&out_chunk[i * cols + j..][..NR]);
                acc1.copy_from_slice(&out_chunk[(i + 1) * cols + j..][..NR]);
                acc2.copy_from_slice(&out_chunk[(i + 2) * cols + j..][..NR]);
                acc3.copy_from_slice(&out_chunk[(i + 3) * cols + j..][..NR]);
                for (((&av0, &av1), (&av2, &av3)), b_row) in a0
                    .iter()
                    .zip(a1)
                    .zip(a2.iter().zip(a3))
                    .zip(b_panel.chunks_exact(cols))
                {
                    let b_tile = &b_row[j..j + NR];
                    if av0 != 0.0 {
                        for (o, &bv) in acc0.iter_mut().zip(b_tile) {
                            *o += av0 * bv;
                        }
                    }
                    if av1 != 0.0 {
                        for (o, &bv) in acc1.iter_mut().zip(b_tile) {
                            *o += av1 * bv;
                        }
                    }
                    if av2 != 0.0 {
                        for (o, &bv) in acc2.iter_mut().zip(b_tile) {
                            *o += av2 * bv;
                        }
                    }
                    if av3 != 0.0 {
                        for (o, &bv) in acc3.iter_mut().zip(b_tile) {
                            *o += av3 * bv;
                        }
                    }
                }
                out_chunk[i * cols + j..][..NR].copy_from_slice(&acc0);
                out_chunk[(i + 1) * cols + j..][..NR].copy_from_slice(&acc1);
                out_chunk[(i + 2) * cols + j..][..NR].copy_from_slice(&acc2);
                out_chunk[(i + 3) * cols + j..][..NR].copy_from_slice(&acc3);
                j += NR;
            }
            if j < cols {
                // Column remainder of the stripe: scalar, same order.
                for r in 0..MR {
                    let out_row = &mut out_chunk[(i + r) * cols..(i + r + 1) * cols];
                    matmul_row_tail(a, a_cols, b, cols, i0 + i + r, k0, k_end, j, out_row);
                }
            }
            i += MR;
        }
        // Row remainder below the last full stripe: scalar rows.
        for r in i..rows_here {
            let out_row = &mut out_chunk[r * cols..(r + 1) * cols];
            matmul_row_tail(a, a_cols, b, cols, i0 + r, k0, k_end, 0, out_row);
        }
    }
}

/// Register-tiled inner kernel for [`Matrix::matmul_transposed`]: `MR`
/// rows of `a` against `NR` rows of `b` accumulate into a 16-register
/// tile, breaking the single-accumulator dependency chain of the serial
/// dot in [`Matrix::matmul_transposed_naive`] while keeping each output
/// element's fold order untouched (ascending `k` from `0.0`), so results
/// are bit-identical to the oracle.
fn matmul_transposed_rows_into_micro(
    a: &[f32],
    a_cols: usize,
    other: &Matrix,
    i0: usize,
    out_chunk: &mut [f32],
) {
    let b = other.as_slice();
    let b_rows = other.rows;
    let rows_here = out_chunk.len() / b_rows;
    let mut i = 0;
    while i + MR <= rows_here {
        let mut j = 0;
        while j + NR <= b_rows {
            let mut acc = [[0.0f32; NR]; MR];
            for k in 0..a_cols {
                let mut bv = [0.0f32; NR];
                for (c, v) in bv.iter_mut().enumerate() {
                    *v = b[(j + c) * a_cols + k];
                }
                for (r, acc_row) in acc.iter_mut().enumerate() {
                    let av = a[(i0 + i + r) * a_cols + k];
                    for (o, &bvc) in acc_row.iter_mut().zip(&bv) {
                        *o += av * bvc;
                    }
                }
            }
            for (r, acc_row) in acc.iter().enumerate() {
                out_chunk[(i + r) * b_rows + j..][..NR].copy_from_slice(acc_row);
            }
            j += NR;
        }
        // Column remainder: serial dots, identical fold order.
        for r in 0..MR {
            let a_row = &a[(i0 + i + r) * a_cols..(i0 + i + r + 1) * a_cols];
            for (c, o) in out_chunk[(i + r) * b_rows..(i + r + 1) * b_rows]
                .iter_mut()
                .enumerate()
                .skip(j)
            {
                let mut dot = 0.0f32;
                for (x, y) in a_row.iter().zip(other.row(c)) {
                    dot += x * y;
                }
                *o = dot;
            }
        }
        i += MR;
    }
    // Row remainder: serial dots.
    for r in i..rows_here {
        let a_row = &a[(i0 + r) * a_cols..(i0 + r + 1) * a_cols];
        for (c, o) in out_chunk[r * b_rows..(r + 1) * b_rows].iter_mut().enumerate() {
            let mut dot = 0.0f32;
            for (x, y) in a_row.iter().zip(other.row(c)) {
                dot += x * y;
            }
            *o = dot;
        }
    }
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from an owned buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix { rows: r, cols: c, data }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy of column `c`.
    pub fn col(&self, c: usize) -> Vec<f32> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Flat view of the underlying buffer (row-major).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat view of the underlying buffer (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Matrix product `self * other`, via the register-tiled microkernel.
    ///
    /// The kernel tiles over output-row blocks and k-panels so the
    /// streamed panel of `other` stays cache-resident, walks each panel
    /// in `MR x NR` register-accumulator tiles, and fans row blocks
    /// across [`crate::par`] when the product is large enough to amortize
    /// the pool. Each output element still accumulates its terms in
    /// ascending-`k` order with the same zero-skip as
    /// [`Matrix::matmul_naive`], so the result is bit-identical to the
    /// naive oracle (and to [`Matrix::matmul_blocked`]) at every thread
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        if self.rows == 0 || self.cols == 0 || other.cols == 0 {
            return out;
        }
        let cols = other.cols;
        // Row blocks only split *which elements a worker owns*; every
        // element's accumulation order is fixed, so the split (and hence
        // the parallel grain) cannot change bits.
        let grain = matmul_rows_per_chunk(self.rows, MICRO_OPS_PER_MAC * self.cols * cols) * cols;
        crate::par::par_chunks_mut(&mut out.data, grain, |chunk_idx, out_chunk| {
            let i0 = chunk_idx * (grain / cols);
            matmul_rows_into_micro(&self.data, self.cols, &other.data, cols, i0, out_chunk);
        });
        out
    }

    /// Matrix product via the pre-microkernel row-streaming blocked
    /// kernel: k-panelled and pool-dispatched like [`Matrix::matmul`],
    /// but re-touching the full output row once per `k` instead of
    /// holding an `MR x NR` accumulator tile in registers. Retained as
    /// the mid-tier baseline the `microkernel_matmul_*` bench groups
    /// measure against; bit-identical to [`Matrix::matmul`] and
    /// [`Matrix::matmul_naive`].
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul_blocked(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        if self.rows == 0 || self.cols == 0 || other.cols == 0 {
            return out;
        }
        let cols = other.cols;
        let grain = matmul_rows_per_chunk(self.rows, MICRO_OPS_PER_MAC * self.cols * cols) * cols;
        crate::par::par_chunks_mut(&mut out.data, grain, |chunk_idx, out_chunk| {
            let i0 = chunk_idx * (grain / cols);
            matmul_rows_into(&self.data, self.cols, &other.data, cols, i0, out_chunk);
        });
        out
    }

    /// Reference scalar matmul (i-k-j loop), retained as the test oracle
    /// for the blocked kernel and as the single-thread baseline in the
    /// `par_scaling` bench.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order keeps the inner loop streaming over contiguous rows.
        for i in 0..self.rows {
            let out_row = i * other.cols;
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let b_row = k * other.cols;
                for j in 0..other.cols {
                    out.data[out_row + j] += a * other.data[b_row + j];
                }
            }
        }
        out
    }

    /// Matrix product with the transpose of `other`: `self * other^T`,
    /// via the register-tiled microkernel.
    ///
    /// This avoids materializing the transpose in attention score
    /// computation (`Q * K^T`). `MR x NR` output tiles accumulate 16
    /// independent dots at once — breaking the serial single-accumulator
    /// dependency chain of the naive dot — and rows fan across
    /// [`crate::par`] for large products. Each output element keeps the
    /// naive sequential fold order, so the result is bit-identical to
    /// [`Matrix::matmul_transposed_naive`].
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_transposed(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transposed shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        if self.rows == 0 || other.rows == 0 {
            return out;
        }
        let b_rows = other.rows;
        let grain = matmul_rows_per_chunk(self.rows, MICRO_OPS_PER_MAC * self.cols * b_rows) * b_rows;
        crate::par::par_chunks_mut(&mut out.data, grain, |chunk_idx, out_chunk| {
            let i0 = chunk_idx * (grain / b_rows);
            matmul_transposed_rows_into_micro(&self.data, self.cols, other, i0, out_chunk);
        });
        out
    }

    /// Transpose-product via the pre-microkernel kernel: one serial dot
    /// per output element, pool-dispatched by row blocks. Retained as the
    /// baseline for the `microkernel_matmul_*` bench groups;
    /// bit-identical to [`Matrix::matmul_transposed`] and the naive
    /// oracle. Its dispatch grain uses the audited
    /// [`SCALAR_DOT_OPS_PER_MAC`] estimate — the serial dot is
    /// latency-bound, so its true per-item cost is ~3x the streaming
    /// kernels', which the previously inherited matmul constant
    /// under-stated.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_transposed_blocked(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transposed shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        if self.rows == 0 || other.rows == 0 {
            return out;
        }
        let b_rows = other.rows;
        let grain =
            matmul_rows_per_chunk(self.rows, SCALAR_DOT_OPS_PER_MAC * self.cols * b_rows) * b_rows;
        crate::par::par_chunks_mut(&mut out.data, grain, |chunk_idx, out_chunk| {
            let i0 = chunk_idx * (grain / b_rows);
            for (i, out_row) in out_chunk.chunks_mut(b_rows).enumerate() {
                let a_row = &self.data[(i0 + i) * self.cols..(i0 + i + 1) * self.cols];
                for (j, o) in out_row.iter_mut().enumerate() {
                    let b_row = other.row(j);
                    let mut acc = 0.0;
                    for (a, b) in a_row.iter().zip(b_row) {
                        acc += a * b;
                    }
                    *o = acc;
                }
            }
        });
        out
    }

    /// Reference scalar transpose-product, retained as the test oracle
    /// for the blocked/parallel [`Matrix::matmul_transposed`].
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_transposed_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transposed shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let mut acc = 0.0;
                for (a, b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        out
    }

    /// Returns the transpose.
    pub fn transposed(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Element-wise sum `self + other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Element-wise difference `self - other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Scales every element by `s`.
    pub fn scale(&self, s: f32) -> Matrix {
        let data = self.data.iter().map(|v| v * s).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Appends a row to the bottom of the matrix.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.cols()` (unless the matrix is empty, in
    /// which case the row defines the width).
    pub fn push_row(&mut self, row: &[f32]) {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        }
        assert_eq!(row.len(), self.cols, "push_row width mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Appends all rows of `other` in one bulk copy (the fast path KV
    /// views use instead of per-row [`Matrix::push_row`] calls).
    ///
    /// # Panics
    ///
    /// Panics if `other.cols() != self.cols()` (unless `self` is empty,
    /// in which case `other` defines the width).
    pub fn push_rows(&mut self, other: &Matrix) {
        if self.rows == 0 && self.cols == 0 {
            self.cols = other.cols;
        }
        assert_eq!(other.cols, self.cols, "push_rows width mismatch");
        self.data.extend_from_slice(&other.data);
        self.rows += other.rows;
    }

    /// Returns a new matrix containing the selected rows, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(0, self.cols);
        out.cols = self.cols;
        for &i in indices {
            assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
            out.push_row(self.row(i));
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Maximum absolute element, or 0.0 for an empty matrix.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// Mean of all elements, or 0.0 for an empty matrix.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f32>() / self.data.len() as f32
        }
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>9.4}", self.get(r, c))?;
                if c + 1 < self.cols.min(8) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]));
    }

    #[test]
    fn matmul_transposed_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0]]);
        assert_eq!(a.matmul_transposed(&b), a.matmul(&b.transposed()));
    }

    #[test]
    fn push_row_grows_matrix() {
        let mut m = Matrix::zeros(0, 0);
        m.push_row(&[1.0, 2.0]);
        m.push_row(&[3.0, 4.0]);
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.get(1, 1), 4.0);
    }

    #[test]
    fn select_rows_preserves_order() {
        let m = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
        let s = m.select_rows(&[3, 0, 2]);
        assert_eq!(s.col(0), vec![3.0, 0.0, 2.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 5.0]]);
        assert_eq!(a.add(&b), Matrix::from_rows(&[&[4.0, 7.0]]));
        assert_eq!(b.sub(&a), Matrix::from_rows(&[&[2.0, 3.0]]));
        assert_eq!(a.scale(2.0), Matrix::from_rows(&[&[2.0, 4.0]]));
    }

    #[test]
    fn norms_and_stats() {
        let m = Matrix::from_rows(&[&[3.0, -4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
        assert_eq!(m.max_abs(), 4.0);
        assert!((m.mean() + 0.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
