//! Seeded, shrink-free property-test harness.
//!
//! Replaces `proptest` for the workspace: each property runs `N` cases,
//! every case driven by a [`SeededRng`] whose seed derives deterministically
//! from a fixed base and the case index. There is no shrinking — instead a
//! failing case prints its seed so the exact inputs can be replayed by
//! constructing `SeededRng::new(seed)` in a scratch test.
//!
//! Two entry points:
//!
//! - [`check_cases`] — run a closure over `cases` fresh RNGs, reporting the
//!   failing case's seed before propagating the panic.
//! - [`det_cases!`](crate::det_cases) — declares a `#[test]` wrapping
//!   `check_cases`, mirroring the shape of a `proptest!` block.
//!
//! # Examples
//!
//! ```
//! use rkvc_tensor::check::check_cases;
//!
//! check_cases("abs_is_nonnegative", 32, |rng| {
//!     let x: f64 = rng.gen_range(-100.0..100.0);
//!     assert!(x.abs() >= 0.0);
//! });
//! ```

use crate::det::{splitmix64, SeededRng};

/// Base mixed into every per-case seed; fixed so failures reproduce across
/// runs and machines.
const CASE_SEED_BASE: u64 = 0x5EED_CA5E_0000_0000;

/// The seed used for case `index` of a property.
pub fn case_seed(index: u64) -> u64 {
    let mut s = CASE_SEED_BASE ^ index;
    splitmix64(&mut s)
}

/// Runs `cases` deterministic cases of a property.
///
/// Each case gets a fresh [`SeededRng`] seeded from [`case_seed`]. On a
/// panic inside `property`, the case index and seed are printed to stderr
/// and the panic is re-raised so the test still fails normally.
///
/// # Panics
///
/// Re-raises any panic from `property`.
pub fn check_cases<F>(name: &str, cases: u64, property: F)
where
    F: Fn(&mut SeededRng),
{
    for case in 0..cases {
        let seed = case_seed(case);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut rng = SeededRng::new(seed);
            property(&mut rng);
        }));
        if let Err(panic) = outcome {
            eprintln!(
                "property '{name}' failed at case {case}/{cases} \
                 (replay with SeededRng::new({seed:#018x}))"
            );
            std::panic::resume_unwind(panic);
        }
    }
}

/// Declares seeded property tests.
///
/// Each entry expands to a `#[test]` function running the body over `N`
/// deterministic cases (default 64; override with `cases = N`). The body
/// receives `rng: &mut SeededRng`.
///
/// ```
/// rkvc_tensor::det_cases! {
///     fn sum_is_commutative(rng, cases = 16) {
///         let a: i32 = rng.gen_range(-1000..1000);
///         let b: i32 = rng.gen_range(-1000..1000);
///         assert_eq!(a + b, b + a);
///     }
/// }
/// ```
///
/// (The declared function carries `#[test]`, so it only runs under the
/// test harness.)
#[macro_export]
macro_rules! det_cases {
    ($( $(#[$attr:meta])* fn $name:ident($rng:ident $(, cases = $cases:expr)?) $body:block )+) => {
        $(
            $(#[$attr])*
            #[test]
            fn $name() {
                #[allow(unused_mut, unused_assignments)]
                let mut cases: u64 = 64;
                $( cases = $cases; )?
                $crate::check::check_cases(
                    stringify!($name),
                    cases,
                    |$rng: &mut $crate::det::SeededRng| $body,
                );
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_seeds_are_distinct_and_stable() {
        let a: Vec<u64> = (0..64).map(case_seed).collect();
        let b: Vec<u64> = (0..64).map(case_seed).collect();
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len(), "case seeds must not collide");
    }

    #[test]
    fn runs_every_case() {
        let mut hits = 0u64;
        check_cases("count", 10, |_rng| {
            // The closure is Fn, so count via a Cell-free trick is not
            // available; use an atomic instead.
        });
        let counter = std::sync::atomic::AtomicU64::new(0);
        check_cases("count_atomic", 10, |_rng| {
            counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        hits += counter.load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(hits, 10);
    }

    #[test]
    fn failing_case_propagates_panic() {
        let result = std::panic::catch_unwind(|| {
            check_cases("always_fails", 3, |_rng| panic!("boom"));
        });
        assert!(result.is_err());
    }

    det_cases! {
        fn macro_declares_runnable_property(rng, cases = 8) {
            let x: u32 = rng.gen_range(1..100);
            assert!(x >= 1 && x < 100);
        }

        fn macro_default_case_count_works(rng) {
            assert!(rng.gen_f64() < 1.0);
        }
    }
}
