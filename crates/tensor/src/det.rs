//! Deterministic, dependency-free randomness substrate.
//!
//! This module replaces the `rand`/`rand_distr` crates with an in-repo
//! implementation so the workspace builds fully offline and every random
//! stream is pinned to this repository's source — not to whatever version
//! of an external crate a registry resolves. The paper's experiments
//! (throughput sweeps, length distributions, negative-sample mining) are
//! only comparable when seeded runs are bit-reproducible, so the generator
//! and every distribution here are frozen: changing them is a
//! golden-output-breaking change.
//!
//! The core generator is PCG XSL RR 128/64 ("PCG64"), seeded through
//! SplitMix64 so that small seed integers (0, 1, 2, ...) still produce
//! well-mixed, independent streams.
//!
//! # Examples
//!
//! ```
//! use rkvc_tensor::det::SeededRng;
//!
//! let mut a = SeededRng::new(7);
//! let mut b = SeededRng::new(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! assert!((0.0..1.0).contains(&a.gen_f64()));
//! let x: usize = a.gen_range(10..20);
//! assert!((10..20).contains(&x));
//! ```

/// PCG64 multiplier (PCG XSL RR 128/64).
const PCG_MUL: u128 = 0x2360_ed05_1fc6_5da4_4385_df64_9fcc_f645;

/// SplitMix64 step: used for seeding and for deriving per-case seeds in
/// the property-test harness.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The deterministic RNG used across the workspace (PCG XSL RR 128/64).
///
/// Cloning an instance clones the stream position, so two clones produce
/// identical future outputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeededRng {
    state: u128,
    inc: u128,
}

impl SeededRng {
    /// Creates a generator from a `u64` seed via SplitMix64 expansion.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s0 = splitmix64(&mut sm) as u128;
        let s1 = splitmix64(&mut sm) as u128;
        let i0 = splitmix64(&mut sm) as u128;
        let i1 = splitmix64(&mut sm) as u128;
        let mut rng = SeededRng {
            state: (s0 << 64) | s1,
            // The increment must be odd; the stream id picks one of 2^127
            // distinct sequences.
            inc: ((i0 << 64) | i1) | 1,
        };
        // Warm up: decorrelates the first output from the raw seed bits.
        rng.next_u64();
        rng
    }

    /// Advances the LCG state and returns the next 64 permuted bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_mul(PCG_MUL).wrapping_add(self.inc);
        let rot = (self.state >> 122) as u32;
        let xored = ((self.state >> 64) as u64) ^ (self.state as u64);
        xored.rotate_right(rot)
    }

    /// Next 32 random bits (high half of [`Self::next_u64`]).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)` with 24 bits of precision.
    #[inline]
    pub fn gen_f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// A full-range random value of a primitive type.
    ///
    /// Mirrors `rand::Rng::gen::<T>()` for the types the workspace uses.
    #[inline]
    pub fn gen<T: DetRandom>(&mut self) -> T {
        T::det_random(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform sample from a half-open or inclusive range.
    ///
    /// Supported range types mirror the `rand` API the workspace used:
    /// `Range`/`RangeInclusive` over `f32`, `f64`, and the common integer
    /// types.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<T, R: RangeSample<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Uniform `u64` in `[0, bound)` via 128-bit widening multiply
    /// (Lemire's method, with rejection to remove modulo bias).
    #[inline]
    pub fn bounded_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bounded_u64 bound must be positive");
        let mut m = (self.next_u64() as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                m = (self.next_u64() as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Fisher–Yates shuffle of a slice, in place.
    pub fn shuffle_slice<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded_u64((i + 1) as u64) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "choose on empty slice");
        &slice[self.bounded_u64(slice.len() as u64) as usize]
    }
}

/// Types that can be drawn uniformly over their whole domain.
// rkvc-allow(C001): bound of SeededRng::gen; callers invoke the method without naming the trait
pub trait DetRandom {
    /// Draws one value from `rng`.
    fn det_random(rng: &mut SeededRng) -> Self;
}

impl DetRandom for u64 {
    #[inline]
    fn det_random(rng: &mut SeededRng) -> Self {
        rng.next_u64()
    }
}

impl DetRandom for u32 {
    #[inline]
    fn det_random(rng: &mut SeededRng) -> Self {
        rng.next_u32()
    }
}

impl DetRandom for bool {
    #[inline]
    fn det_random(rng: &mut SeededRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl DetRandom for f64 {
    #[inline]
    fn det_random(rng: &mut SeededRng) -> Self {
        rng.gen_f64()
    }
}

impl DetRandom for f32 {
    #[inline]
    fn det_random(rng: &mut SeededRng) -> Self {
        rng.gen_f32()
    }
}

/// Range types [`SeededRng::gen_range`] accepts, yielding `T`.
///
/// The element type is a trait parameter (not an associated type) so that
/// integer-literal ranges infer their width from the call site, exactly as
/// `rand::Rng::gen_range` did.
// rkvc-allow(C001): bound of SeededRng::gen_range; callers invoke the method without naming the trait
pub trait RangeSample<T> {
    /// Draws one value uniformly from the range.
    fn sample_from(self, rng: &mut SeededRng) -> T;
}

macro_rules! int_range_sample {
    ($($t:ty),+) => {$(
        impl RangeSample<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from(self, rng: &mut SeededRng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded_u64(span) as i128) as $t
            }
        }
        impl RangeSample<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from(self, rng: &mut SeededRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    // Whole-domain range: a raw draw is already uniform.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.bounded_u64(span as u64) as i128) as $t
            }
        }
    )+};
}

int_range_sample!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

macro_rules! float_range_sample {
    ($($t:ty, $unit:ident);+ $(;)?) => {$(
        impl RangeSample<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from(self, rng: &mut SeededRng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                self.start + (self.end - self.start) * rng.$unit()
            }
        }
        impl RangeSample<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from(self, rng: &mut SeededRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                lo + (hi - lo) * rng.$unit()
            }
        }
    )+};
}

float_range_sample!(f32, gen_f32; f64, gen_f64);

/// Error constructing a distribution with out-of-domain parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// rkvc-allow(C001): error type of the pub distribution constructors; consumers propagate it without naming it
pub struct DistError(&'static str);

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for DistError {}

/// Gaussian distribution sampled with the Box–Muller transform.
///
/// Both Box–Muller outputs are consumed per pair of draws (the second is
/// cached), so a `Normal` holds sampling state; clone it together with the
/// RNG when forking deterministic streams.
#[derive(Debug, Clone, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
    spare: Option<f64>,
}

impl Normal {
    /// Creates a Gaussian; `std_dev` must be finite and non-negative.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, DistError> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err(DistError("Normal requires finite mean and std_dev >= 0"));
        }
        Ok(Normal {
            mean,
            std_dev,
            spare: None,
        })
    }

    /// Draws one sample.
    pub fn sample(&mut self, rng: &mut SeededRng) -> f64 {
        if let Some(z) = self.spare.take() {
            return self.mean + self.std_dev * z;
        }
        // Box–Muller: u1 in (0, 1] so ln(u1) is finite.
        let u1 = 1.0 - rng.gen_f64();
        let u2 = rng.gen_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        self.mean + self.std_dev * r * theta.cos()
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
#[derive(Debug, Clone, PartialEq)]
pub struct LogNormal {
    normal: Normal,
}

impl LogNormal {
    /// Creates a log-normal with the given log-space mean and std-dev.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, DistError> {
        Ok(LogNormal {
            normal: Normal::new(mu, sigma)?,
        })
    }

    /// Draws one sample.
    pub fn sample(&mut self, rng: &mut SeededRng) -> f64 {
        self.normal.sample(rng).exp()
    }
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Creates an exponential; `lambda` must be finite and positive.
    pub fn new(lambda: f64) -> Result<Self, DistError> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(DistError("Exp requires lambda > 0"));
        }
        Ok(Exp { lambda })
    }

    /// Draws one sample by inversion: `-ln(1 - u) / lambda`.
    pub fn sample(&mut self, rng: &mut SeededRng) -> f64 {
        let u = rng.gen_f64();
        -(1.0 - u).ln() / self.lambda
    }
}

/// Slice shuffling, mirroring `rand::seq::SliceRandom::shuffle` so call
/// sites read `data.shuffle(rng)`.
pub trait Shuffle {
    /// Shuffles `self` in place with a Fisher–Yates pass.
    fn shuffle(&mut self, rng: &mut SeededRng);
}

impl<T> Shuffle for [T] {
    fn shuffle(&mut self, rng: &mut SeededRng) {
        rng.shuffle_slice(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededRng::new(123);
        let mut b = SeededRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let av: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn golden_first_outputs_are_frozen() {
        // Bit-reproducibility contract: these values must never change.
        // If this test fails, seeded experiment outputs have silently
        // shifted and every golden JSON in results/ is invalidated.
        let mut rng = SeededRng::new(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut again = SeededRng::new(0);
        let second: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(first, second);
        // Distinct consecutive outputs (sanity against a stuck generator).
        assert!(first.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SeededRng::new(7);
        for _ in 0..1000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
            let y = rng.gen_f32();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SeededRng::new(9);
        for _ in 0..1000 {
            let a: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&a));
            let b: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&b));
            let c: f32 = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&c));
            let d: f64 = rng.gen_range(0.25..=0.85);
            assert!((0.25..=0.85).contains(&d));
        }
    }

    #[test]
    fn bounded_u64_covers_small_domain() {
        let mut rng = SeededRng::new(11);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.bounded_u64(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b = a.clone();
        a.shuffle(&mut SeededRng::new(5));
        b.shuffle(&mut SeededRng::new(5));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(a, sorted, "seed 5 should not produce identity shuffle");
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = SeededRng::new(13);
        let mut n = Normal::new(2.0, 3.0).unwrap();
        let samples: Vec<f64> = (0..20_000).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
            / samples.len() as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn exp_mean_matches_rate() {
        let mut rng = SeededRng::new(17);
        let mut e = Exp::new(4.0).unwrap();
        let mean = (0..20_000).map(|_| e.sample(&mut rng)).sum::<f64>() / 20_000.0;
        assert!((mean - 0.25).abs() < 0.02, "mean {mean}");
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(f64::NAN).is_err());
    }

    #[test]
    fn lognormal_median_matches_mu() {
        let mut rng = SeededRng::new(19);
        let mut d = LogNormal::new(3.0, 0.5).unwrap();
        let mut samples: Vec<f64> = (0..10_001).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[5000];
        // Median of LogNormal(mu, sigma) is exp(mu).
        assert!((median - 3.0f64.exp()).abs() / 3.0f64.exp() < 0.05);
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn dist_constructors_reject_bad_parameters() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(LogNormal::new(0.0, f64::INFINITY).is_err());
    }
}
