//! Neural-network primitives used by TinyLM: softmax, RMSNorm, SiLU, RoPE,
//! and sampling helpers.

use crate::Matrix;

/// Numerically stable softmax over a single row, returning a new vector.
///
/// # Examples
///
/// ```
/// let p = rkvc_tensor::softmax_row(&[1.0, 1.0]);
/// assert!((p[0] - 0.5).abs() < 1e-6);
/// ```
pub fn softmax_row(logits: &[f32]) -> Vec<f32> {
    let mut out = logits.to_vec();
    softmax_slice(&mut out);
    out
}

/// Numerically stable softmax into a caller-owned buffer, so hot loops
/// (per-token attention) can reuse one allocation. `out` is cleared and
/// refilled; bits are identical to [`softmax_row`].
pub fn softmax_into(logits: &[f32], out: &mut Vec<f32>) {
    out.clear();
    out.extend_from_slice(logits);
    softmax_slice(out);
}

fn softmax_slice(row: &mut [f32]) {
    if row.is_empty() {
        return;
    }
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

/// Applies a numerically stable softmax to every row of `m` in place.
// rkvc-allow(C001): reference kernel surface of the hermetic tensor crate, exercised by its unit tests
pub fn softmax_in_place(m: &mut Matrix) {
    for r in 0..m.rows() {
        softmax_slice(m.row_mut(r));
    }
}

/// RMSNorm: `x * gain / rms(x)` with epsilon `1e-5`.
///
/// # Panics
///
/// Panics if `x.len() != gain.len()`.
// rkvc-allow(C001): reference kernel surface of the hermetic tensor crate, exercised by its unit tests
pub fn rms_norm(x: &[f32], gain: &[f32]) -> Vec<f32> {
    assert_eq!(x.len(), gain.len(), "rms_norm length mismatch");
    let ms = x.iter().map(|v| v * v).sum::<f32>() / x.len().max(1) as f32;
    let inv = 1.0 / (ms + 1e-5).sqrt();
    x.iter().zip(gain).map(|(v, g)| v * inv * g).collect()
}

/// SiLU activation `x * sigmoid(x)` (the LLaMA MLP gate).
pub fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// Applies rotary position embedding to a head-dimension vector in place.
///
/// Pairs `(x[2i], x[2i+1])` are rotated by `pos * theta^(-2i/d)` with the
/// standard base `10000`. Odd trailing elements are left untouched.
// rkvc-allow(C001): reference kernel surface of the hermetic tensor crate, exercised by its unit tests
pub fn rope_rotate(x: &mut [f32], pos: usize, head_dim: usize) {
    let half = head_dim / 2;
    for i in 0..half {
        let freq = 1.0 / 10000f32.powf(2.0 * i as f32 / head_dim as f32);
        let angle = pos as f32 * freq;
        let (sin, cos) = angle.sin_cos();
        let a = x[2 * i];
        let b = x[2 * i + 1];
        x[2 * i] = a * cos - b * sin;
        x[2 * i + 1] = a * sin + b * cos;
    }
}

/// Left-to-right `f64` summation with a fixed accumulation order.
///
/// Float addition is not associative, so the order of a reduction is
/// part of its semantics. This helper (and [`seq_sum_f32`]) is the
/// audited home for sequential accumulation: bit-identical to
/// `iter.sum::<f64>()`, but centralized so the D006 lint can confine
/// order-dependent reductions to code that has declared its order.
/// Large reductions that may be parallelized belong in
/// [`crate::par::par_reduce`]'s fixed tree instead.
pub fn seq_sum_f64(it: impl Iterator<Item = f64>) -> f64 {
    it.fold(0.0, |acc, v| acc + v)
}

/// Left-to-right `f32` summation with a fixed accumulation order.
/// See [`seq_sum_f64`].
pub fn seq_sum_f32(it: impl Iterator<Item = f32>) -> f32 {
    it.fold(0.0, |acc, v| acc + v)
}

/// Index of the maximum element (first occurrence wins). Returns 0 for an
/// empty slice.
pub fn argmax(values: &[f32]) -> usize {
    let mut best = 0;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in values.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

/// Indices of the `k` largest elements, in descending value order.
// rkvc-allow(C001): reference kernel surface of the hermetic tensor crate, exercised by its unit tests
pub fn top_k(values: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[b].partial_cmp(&values[a]).unwrap_or(std::cmp::Ordering::Equal));
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax_row(&[0.5, 1.5, -2.0, 3.0]);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(p.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax_row(&[1.0, 2.0, 3.0]);
        let b = softmax_row(&[101.0, 102.0, 103.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_extreme_values() {
        let p = softmax_row(&[1e30, -1e30]);
        assert!((p[0] - 1.0).abs() < 1e-6);
        assert_eq!(p[1], 0.0);
    }

    #[test]
    fn softmax_matrix_rows_independent() {
        let mut m = Matrix::from_rows(&[&[0.0, 0.0], &[10.0, 0.0]]);
        softmax_in_place(&mut m);
        assert!((m.get(0, 0) - 0.5).abs() < 1e-6);
        assert!(m.get(1, 0) > 0.99);
    }

    #[test]
    fn rms_norm_unit_output_scale() {
        let x = vec![3.0, 4.0];
        let g = vec![1.0, 1.0];
        let y = rms_norm(&x, &g);
        // rms = sqrt((9+16)/2) = sqrt(12.5)
        let rms = 12.5f32.sqrt();
        assert!((y[0] - 3.0 / rms).abs() < 1e-4);
        assert!((y[1] - 4.0 / rms).abs() < 1e-4);
    }

    #[test]
    fn silu_known_values() {
        assert_eq!(silu(0.0), 0.0);
        assert!((silu(1.0) - 0.731_058_6).abs() < 1e-5);
        assert!(silu(-20.0).abs() < 1e-6);
    }

    #[test]
    fn rope_preserves_norm() {
        let mut x = vec![1.0, 2.0, 3.0, 4.0];
        let norm_before: f32 = x.iter().map(|v| v * v).sum();
        rope_rotate(&mut x, 7, 4);
        let norm_after: f32 = x.iter().map(|v| v * v).sum();
        assert!((norm_before - norm_after).abs() < 1e-4);
    }

    #[test]
    fn rope_position_zero_is_identity() {
        let mut x = vec![1.0, 2.0, 3.0, 4.0];
        let orig = x.clone();
        rope_rotate(&mut x, 0, 4);
        assert_eq!(x, orig);
    }

    #[test]
    fn rope_relative_rotation_is_consistent() {
        // Dot product of two RoPE'd vectors depends only on relative position.
        let base = vec![0.3, -0.7, 1.1, 0.2];
        let dot = |a: &[f32], b: &[f32]| a.iter().zip(b).map(|(x, y)| x * y).sum::<f32>();
        let mut a5 = base.clone();
        let mut b8 = base.clone();
        rope_rotate(&mut a5, 5, 4);
        rope_rotate(&mut b8, 8, 4);
        let mut a10 = base.clone();
        let mut b13 = base.clone();
        rope_rotate(&mut a10, 10, 4);
        rope_rotate(&mut b13, 13, 4);
        assert!((dot(&a5, &b8) - dot(&a10, &b13)).abs() < 1e-4);
    }

    #[test]
    fn argmax_and_top_k() {
        let v = [0.1, 0.9, 0.3, 0.9];
        assert_eq!(argmax(&v), 1); // First occurrence wins.
        assert_eq!(top_k(&v, 2), vec![1, 3]);
        assert_eq!(top_k(&v, 10).len(), 4);
        assert_eq!(argmax(&[]), 0);
    }
}
