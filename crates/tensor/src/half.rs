//! IEEE-754 binary16 conversion.
//!
//! The reproduction stores the FP16 baseline KV cache by rounding every f32
//! through binary16, so the baseline carries exactly the precision the paper's
//! FP16 baseline would. The conversions are bit-exact (round-to-nearest-even),
//! implemented from scratch to avoid an external `half` dependency.

/// Converts an `f32` to IEEE-754 binary16 bits (round-to-nearest-even).
///
/// # Examples
///
/// ```
/// use rkvc_tensor::{f32_to_f16_bits, f16_bits_to_f32};
/// assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1.0)), 1.0);
/// ```
pub fn f32_to_f16_bits(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;

    if exp == 0xff {
        // Inf / NaN: preserve NaN-ness with a quiet bit.
        let nan_bit = if mant != 0 { 0x0200 } else { 0 };
        return sign | 0x7c00 | nan_bit | ((mant >> 13) as u16 & 0x03ff);
    }

    // Re-bias exponent from 127 to 15.
    let unbiased = exp - 127;
    let half_exp = unbiased + 15;

    if half_exp >= 0x1f {
        // Overflow to infinity.
        return sign | 0x7c00;
    }

    if half_exp <= 0 {
        // Subnormal or zero in f16.
        if half_exp < -10 {
            return sign; // Rounds to zero.
        }
        // Add the implicit leading bit and shift into subnormal position.
        let mant = mant | 0x0080_0000;
        let shift = (14 - half_exp) as u32;
        let rounded = mant >> shift;
        let remainder = mant & ((1u32 << shift) - 1);
        let half_way = 1u32 << (shift - 1);
        let mut result = rounded as u16;
        if remainder > half_way || (remainder == half_way && (result & 1) == 1) {
            result += 1;
        }
        return sign | result;
    }

    // Normalized: round mantissa from 23 to 10 bits, nearest-even.
    let mut out = sign | ((half_exp as u16) << 10) | ((mant >> 13) as u16);
    let remainder = mant & 0x1fff;
    if remainder > 0x1000 || (remainder == 0x1000 && (out & 1) == 1) {
        out = out.wrapping_add(1); // May carry into exponent, which is correct.
    }
    out
}

/// Converts IEEE-754 binary16 bits to an `f32`.
pub fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = ((bits & 0x8000) as u32) << 16;
    let exp = ((bits >> 10) & 0x1f) as u32;
    let mant = (bits & 0x03ff) as u32;

    let out = if exp == 0 {
        if mant == 0 {
            sign
        } else {
            // Subnormal: normalize.
            let mut e = 0i32;
            let mut m = mant;
            while m & 0x0400 == 0 {
                m <<= 1;
                e -= 1;
            }
            let m = (m & 0x03ff) << 13;
            let e = ((127 - 15 + e + 1) as u32) << 23;
            sign | e | m
        }
    } else if exp == 0x1f {
        sign | 0x7f80_0000 | (mant << 13)
    } else {
        sign | ((exp + 127 - 15) << 23) | (mant << 13)
    };
    f32::from_bits(out)
}

/// Rounds an `f32` through binary16 precision and back.
///
/// This is how the FP16 baseline "stores" values: the f32 buffer holds the
/// exact value an FP16 tensor would hold.
pub fn round_to_f16(value: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(value))
}

/// Rounds every element of a slice through binary16 precision in place.
pub fn round_slice_to_f16(values: &mut [f32]) {
    for v in values {
        *v = round_to_f16(*v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers_round_trip() {
        for i in -2048..=2048 {
            let v = i as f32;
            assert_eq!(round_to_f16(v), v, "integer {i} should be exact in f16");
        }
    }

    #[test]
    fn known_bit_patterns() {
        assert_eq!(f32_to_f16_bits(0.0), 0x0000);
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        assert_eq!(f32_to_f16_bits(1.0), 0x3c00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xc000);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7bff); // f16::MAX
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7c00);
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert_eq!(f32_to_f16_bits(1.0e6), 0x7c00);
        assert!(round_to_f16(1.0e6).is_infinite());
    }

    #[test]
    fn subnormals_round_trip() {
        // Smallest positive f16 subnormal: 2^-24.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(round_to_f16(tiny), tiny);
        // Below half of the smallest subnormal rounds to zero.
        assert_eq!(round_to_f16(2.0f32.powi(-26)), 0.0);
    }

    #[test]
    fn nan_stays_nan() {
        assert!(round_to_f16(f32::NAN).is_nan());
    }

    #[test]
    fn rounding_is_nearest_even() {
        // 1.0 + 2^-11 is exactly halfway between 1.0 and the next f16; ties to
        // even keep 1.0.
        let halfway = 1.0 + 2.0f32.powi(-11);
        assert_eq!(round_to_f16(halfway), 1.0);
        // Slightly above the halfway point rounds up.
        let above = 1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-17);
        assert!(round_to_f16(above) > 1.0);
    }

    #[test]
    fn relative_error_is_bounded() {
        // f16 has 11 significand bits; relative error <= 2^-11 for normal range.
        let mut x = 1e-3f32;
        while x < 1e4 {
            let r = round_to_f16(x);
            assert!(((r - x) / x).abs() <= 2.0f32.powi(-11), "x={x} r={r}");
            x *= 1.37;
        }
    }

    #[test]
    fn slice_rounding_matches_scalar() {
        let mut v = vec![0.1, 0.2, 0.3, 1234.567];
        let expect: Vec<f32> = v.iter().map(|&x| round_to_f16(x)).collect();
        round_slice_to_f16(&mut v);
        assert_eq!(v, expect);
    }
}
