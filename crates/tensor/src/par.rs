//! Deterministic parallel runtime: a **persistent worker pool** with
//! static chunk assignment and dispatch-cost gating.
//!
//! Every entry point in this module guarantees *bit-identical* results at
//! any thread count, including 1. The guarantee is by construction:
//!
//! - **Chunk boundaries are a pure function of `(len, grain)`** — chunk
//!   `c` always covers `items[c*grain .. min((c+1)*grain, len)]`. Thread
//!   count and scheduling decide only *which worker* runs a chunk, never
//!   what the chunk contains.
//! - **Results are placed by chunk index**, not completion order:
//!   [`par_tabulate`] writes chunk `c`'s outputs directly into positions
//!   `c*grain ..` of the destination buffer, and [`par_chunks_mut`] hands
//!   each worker disjoint `&mut` slices whose layout is fixed by
//!   `(len, grain)`.
//! - **Reduction is tree-shaped with a fixed association order**:
//!   [`par_reduce`] combines per-chunk partials pairwise, level by level,
//!   in ascending chunk order — the combine tree depends only on the
//!   number of chunks, so float accumulation order never varies.
//! - **The inline/parallel decision is thread-count-invariant**: a call
//!   runs inline exactly when `chunk_count(len, grain) <= 1` — a pure
//!   function of `(len, grain)`. Callers pick the grain with
//!   [`grain_for`], which folds the pool's dispatch cost into a pure
//!   function of `(len, item_ops)`; neither decision ever consults the
//!   thread count, so outputs cannot depend on it even indirectly.
//!
//! # The persistent pool
//!
//! Earlier revisions spawned fresh OS threads via `std::thread::scope` on
//! every `par_*` call — tolerable for one coarse fan-out, ruinous for a
//! per-token, per-(layer, kv-head) decode loop. The runtime now keeps
//! **one process-wide pool of lazily-spawned workers** that park on a
//! condvar between jobs. A call hands its job off by bumping an epoch
//! under a mutex and broadcasting; workers that wake while the job is
//! still open *check in*, claim chunk indices from an atomic counter, and
//! check out. The **caller participates too**: it runs the same
//! chunk-claiming loop, then closes the job and waits only for workers
//! that actually checked in — so an idle machine pays roughly one
//! lock/notify round-trip per call, not a thread spawn, and a worker that
//! never woke in time costs the caller nothing at all.
//!
//! Lifecycle properties, all covered by tests:
//!
//! - Workers are spawned on first use, up to `num_threads() - 1`, and are
//!   never torn down; [`set_threads`] can grow the pool or shrink the
//!   number of *participants* at any time (surplus workers just keep
//!   parking) — safe mid-run precisely because results are
//!   thread-count-invariant.
//! - A panic in a worker's share of a job is caught, carried back, and
//!   re-raised on the caller after every checked-in worker has exited, so
//!   the pool survives panicking closures and the next call proceeds
//!   normally.
//! - Nested `par_*` calls run inline ([`in_worker`] is set both on pool
//!   workers and on the caller while it participates), so inner kernels
//!   never oversubscribe the machine or deadlock the pool.
//!
//! The thread count comes from `RKVC_THREADS` (default: the machine's
//! available parallelism) and can be overridden in-process with
//! [`set_threads`]. This module is the one sanctioned home for
//! `std::thread` in the workspace; the `rkvc-analyze` lint D004 rejects
//! thread use anywhere else, and D001 keeps wall-clock reads out of the
//! handoff path.

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock, TryLockError};

/// Hard upper bound on the worker count; a backstop against absurd
/// `RKVC_THREADS` values, not a tuning knob.
pub const MAX_THREADS: usize = 256;

/// Estimated scalar operations one *chunk* must carry before a pool
/// handoff can pay for itself; [`grain_for`] sizes chunks so each one
/// clears this bar.
pub const DISPATCH_MIN_OPS: usize = 1 << 14;

/// Estimated scalar operations a whole call must carry before dispatching
/// at all; below this, [`grain_for`] returns a single-chunk grain and the
/// call runs inline regardless of thread count.
pub const DISPATCH_MIN_TOTAL_OPS: usize = 1 << 16;

/// In-process override; 0 means "no override, consult the environment".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set while running inside a pool worker — or on the caller while it
    /// participates in a job — so nested `par_*` calls execute inline
    /// instead of oversubscribing the machine.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

struct WorkerGuard;

impl WorkerGuard {
    fn enter() -> WorkerGuard {
        IN_WORKER.with(|c| c.set(true));
        WorkerGuard
    }
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        IN_WORKER.with(|c| c.set(false));
    }
}

/// Whether the current thread is executing inside a pool job (a pool
/// worker, or the caller while it participates). Nested `par_*` calls
/// observe this and run inline.
pub fn in_worker() -> bool {
    IN_WORKER.with(|c| c.get())
}

/// The machine's available hardware parallelism (>= 1).
pub fn machine_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// `RKVC_THREADS` parsed once; invalid or missing values fall back to the
/// machine parallelism.
fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("RKVC_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(machine_parallelism)
    })
}

/// The number of worker threads `par_*` calls may use.
///
/// Resolution order: [`set_threads`] override, then `RKVC_THREADS`, then
/// the machine's available parallelism. Always in `1..=MAX_THREADS`.
/// Changing this value can never change any result — only wall-clock.
pub fn num_threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::Relaxed);
    let n = if o != 0 { o } else { env_threads() };
    n.clamp(1, MAX_THREADS)
}

/// Overrides the thread count in-process (`None` restores the
/// environment default). Safe to call at any time, even between two jobs
/// on a warm pool: growing spawns more workers on the next dispatch,
/// shrinking just reduces how many parked workers are invited to the next
/// job. Results are thread-count-invariant either way.
pub fn set_threads(n: Option<usize>) {
    THREAD_OVERRIDE.store(n.unwrap_or(0).min(MAX_THREADS), Ordering::Relaxed);
}

/// Number of chunks `(len, grain)` splits into — the pure function that
/// fixes every chunk boundary.
pub fn chunk_count(len: usize, grain: usize) -> usize {
    len.div_ceil(grain.max(1))
}

/// Picks the grain (items per chunk) for a fan-out whose items each cost
/// roughly `item_ops` scalar operations.
///
/// A pure function of `(len, item_ops)` — never of the thread count — so
/// the inline/parallel decision it induces is identical at every
/// `RKVC_THREADS` value:
///
/// - if the whole call is smaller than [`DISPATCH_MIN_TOTAL_OPS`], the
///   grain is `len` (one chunk, which `par_*` runs inline: the job is too
///   small to amortize even one pool handoff);
/// - otherwise each chunk gets enough items to carry
///   [`DISPATCH_MIN_OPS`], so no worker wakes up for less work than the
///   handoff itself costs.
///
/// `item_ops` must itself be a deterministic estimate (sizes, sequence
/// positions — never wall-clock or thread count) to keep the decision
/// reproducible.
pub fn grain_for(len: usize, item_ops: usize) -> usize {
    let per = item_ops.max(1);
    let total = len.saturating_mul(per);
    if total < DISPATCH_MIN_TOTAL_OPS {
        return len.max(1);
    }
    DISPATCH_MIN_OPS.div_ceil(per).clamp(1, len.max(1))
}

/// How many workers to engage for `n_chunks` chunks. Returns 1 (run
/// inline) when parallelism cannot help or we are already inside a pool
/// job. Affects scheduling only, never results.
fn engaged_threads(n_chunks: usize) -> usize {
    if in_worker() || n_chunks <= 1 {
        1
    } else {
        num_threads().min(n_chunks)
    }
}

/// A type-erased borrow of a job body, lifetime-erased for the worker
/// loop. Sound because [`run_job`] never returns (or unwinds) before
/// every worker that checked in to the job has checked out, and workers
/// can only check in while the job is open.
#[derive(Clone, Copy)]
struct JobRef(&'static (dyn Fn() + Sync));

/// Pool bookkeeping, all under one mutex.
struct PoolState {
    /// Bumped once per job; workers use it to notice new work.
    epoch: u64,
    /// The open job, if any. `None` means closed: late workers skip it.
    job: Option<JobRef>,
    /// Workers invited to the current job (`min(requested, spawned)`).
    participants: usize,
    /// Workers that have taken the current job's body.
    entered: usize,
    /// Workers that have finished running it (or caught a panic).
    exited: usize,
    /// OS threads spawned so far (never torn down).
    spawned: usize,
    /// First panic payload caught by a worker during the current job.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct Pool {
    state: Mutex<PoolState>,
    /// Workers park here between jobs.
    job_cv: Condvar,
    /// The caller parks here while checked-in workers finish.
    done_cv: Condvar,
    /// Serializes job submission; contended submitters run inline.
    submit: Mutex<()>,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            epoch: 0,
            job: None,
            participants: 0,
            entered: 0,
            exited: 0,
            spawned: 0,
            panic: None,
        }),
        job_cv: Condvar::new(),
        done_cv: Condvar::new(),
        submit: Mutex::new(()),
    })
}

/// Locks the pool state, shrugging off poisoning: no user code ever runs
/// while this mutex is held, so a poisoned state is still consistent.
fn lock_state(p: &Pool) -> std::sync::MutexGuard<'_, PoolState> {
    p.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The body every pool worker runs: park until a job opens, check in, run
/// the chunk-claiming closure, check out. Workers live for the rest of
/// the process; there is deliberately no teardown path.
fn worker_loop(index: usize, birth_epoch: u64) {
    IN_WORKER.with(|c| c.set(true));
    let p = pool();
    let mut seen = birth_epoch;
    loop {
        let job = {
            let mut st = lock_state(p);
            loop {
                if st.epoch != seen {
                    seen = st.epoch;
                    if index < st.participants {
                        if let Some(j) = st.job {
                            st.entered += 1;
                            break j;
                        }
                    }
                    // Not invited, or the caller already closed the job:
                    // park again until the next epoch.
                }
                st = p
                    .job_cv
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| (job.0)()));
        let mut st = lock_state(p);
        if let Err(payload) = outcome {
            if st.panic.is_none() {
                st.panic = Some(payload);
            }
        }
        st.exited += 1;
        if st.entered == st.exited {
            p.done_cv.notify_all();
        }
    }
}

/// Spawns workers (best effort) until `want` exist. Called with the state
/// lock held; a failed spawn degrades the pool width instead of erroring.
fn ensure_spawned(st: &mut PoolState, want: usize) {
    let want = want.min(MAX_THREADS - 1);
    while st.spawned < want {
        let index = st.spawned;
        let birth_epoch = st.epoch;
        let spawned = std::thread::Builder::new()
            .name(format!("rkvc-par-{index}"))
            .spawn(move || worker_loop(index, birth_epoch));
        if spawned.is_err() {
            break;
        }
        st.spawned += 1;
    }
}

/// Hands `body` to the pool and runs it on up to `threads` threads
/// (including the calling thread). Returns — or resumes a deferred
/// panic — only after every worker that took the job has finished, so
/// `body` may freely borrow the caller's stack.
fn run_job(threads: usize, body: &(dyn Fn() + Sync)) {
    debug_assert!(!in_worker(), "run_job is unreachable from inside a job");
    let p = pool();
    // One job at a time: a submitter that finds the pool busy (another
    // top-level call mid-job) runs its body inline, which is always
    // bit-identical. A poisoned submit lock (a previous caller unwound)
    // is taken over, not treated as busy, so one panic cannot demote the
    // runtime to inline-only forever.
    let _submit = match p.submit.try_lock() {
        Ok(g) => g,
        Err(TryLockError::Poisoned(g)) => g.into_inner(),
        Err(TryLockError::WouldBlock) => {
            let _g = WorkerGuard::enter();
            body();
            return;
        }
    };
    let invited = {
        let mut st = lock_state(p);
        let want = threads.saturating_sub(1);
        ensure_spawned(&mut st, want);
        let invited = want.min(st.spawned);
        if invited > 0 {
            st.participants = invited;
            st.entered = 0;
            st.exited = 0;
            st.panic = None;
            // rkvc-safety: the job reference is cleared — and every
            // checked-in worker awaited — before this function returns or
            // unwinds, so the erased lifetime never outlives the borrow.
            st.job = Some(JobRef(unsafe {
                std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(body)
            }));
            st.epoch = st.epoch.wrapping_add(1);
        }
        invited
    };
    if invited == 0 {
        // No worker could be spawned; run the whole job inline.
        let _g = WorkerGuard::enter();
        body();
        return;
    }
    p.job_cv.notify_all();
    // The caller is a participant too: it claims chunks like any worker.
    let caller_outcome = catch_unwind(AssertUnwindSafe(|| {
        let _g = WorkerGuard::enter();
        body();
    }));
    let worker_panic = {
        let mut st = lock_state(p);
        // Close the job: workers that wake from here on skip it, so the
        // caller waits only for workers that actually checked in.
        st.job = None;
        while st.entered > st.exited {
            st = p
                .done_cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        st.panic.take()
    };
    if let Err(payload) = caller_outcome {
        resume_unwind(payload);
    }
    if let Some(payload) = worker_panic {
        resume_unwind(payload);
    }
}

/// A raw pointer that may cross into workers. Writes through it are
/// sound because chunk claims are unique (an atomic counter) and chunk
/// ranges are disjoint by construction.
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    /// Accessor rather than field access so closures capture the whole
    /// struct (keeping the `Sync` impl in force) instead of the bare
    /// pointer field.
    fn get(&self) -> *mut T {
        self.0
    }
}

// rkvc-safety: SendPtr is only handed to pool workers that write disjoint
// chunk ranges of one reserved allocation; T: Send bounds the payload.
unsafe impl<T: Send> Send for SendPtr<T> {}
// rkvc-safety: shared access is read-only pointer arithmetic; every write
// target is a slot claimed by exactly one worker.
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Maps `f` over `0..len` in chunks of `grain` indices, in parallel.
///
/// Output order is always `f(0), f(1), .., f(len-1)` regardless of thread
/// count: workers claim chunk *indices* from a shared counter and write
/// each result directly into its final slot — no per-call intermediate
/// buffers, no reassembly pass.
pub fn par_tabulate<U, F>(len: usize, grain: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let grain = grain.max(1);
    let n_chunks = chunk_count(len, grain);
    let threads = engaged_threads(n_chunks);
    if threads <= 1 {
        return (0..len).map(f).collect();
    }
    let mut out: Vec<U> = Vec::with_capacity(len);
    let base = SendPtr(out.as_mut_ptr());
    let next = AtomicUsize::new(0);
    let fr = &f;
    run_job(threads, &|| loop {
        let c = next.fetch_add(1, Ordering::Relaxed);
        if c >= n_chunks {
            break;
        }
        let lo = c * grain;
        let hi = (lo + grain).min(len);
        for i in lo..hi {
            // rkvc-safety: chunk `c` is claimed exactly once, chunk
            // ranges are disjoint, and slot `i` lies inside the reserved
            // capacity; each slot is written at most once.
            unsafe { base.get().add(i).write(fr(i)) };
        }
    });
    // rkvc-safety: run_job returns normally only after every chunk index was
    // claimed and completed, so all `len` slots are initialized. If any
    // closure panicked, run_job resumed the unwind above and the vector
    // drops with len 0 — written elements leak rather than risk dropping
    // an uninitialized slot.
    unsafe { out.set_len(len) };
    out
}

/// Maps `f` over a slice in chunks of `grain` items, preserving order.
///
/// Bit-identical to `items.iter().map(f).collect()` at every thread
/// count — parallelism only changes which worker evaluates each chunk.
pub fn par_map<T, U, F>(items: &[T], grain: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_tabulate(items.len(), grain, |i| f(&items[i]))
}

/// Splits `data` into chunks of `grain` elements and runs `f(chunk_index,
/// chunk)` on each, in parallel.
///
/// Chunk bounds depend only on `(data.len(), grain)`; workers claim chunk
/// indices from an atomic counter and carve disjoint `&mut` slices out of
/// the buffer, so writes are race-free and placement-deterministic by
/// construction, with no per-call lane allocations.
pub fn par_chunks_mut<T, F>(data: &mut [T], grain: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let grain = grain.max(1);
    if data.is_empty() {
        return;
    }
    let len = data.len();
    let n_chunks = chunk_count(len, grain);
    let threads = engaged_threads(n_chunks);
    if threads <= 1 {
        for (c, chunk) in data.chunks_mut(grain).enumerate() {
            f(c, chunk);
        }
        return;
    }
    let base = SendPtr(data.as_mut_ptr());
    let next = AtomicUsize::new(0);
    let fr = &f;
    run_job(threads, &|| loop {
        let c = next.fetch_add(1, Ordering::Relaxed);
        if c >= n_chunks {
            break;
        }
        let lo = c * grain;
        let hi = (lo + grain).min(len);
        // rkvc-safety: chunk `c` is claimed exactly once and `[lo, hi)`
        // ranges are pairwise disjoint and in bounds, so each element is
        // aliased by at most one live `&mut` slice.
        let chunk = unsafe { std::slice::from_raw_parts_mut(base.get().add(lo), hi - lo) };
        fr(c, chunk);
    });
}

/// Parallel reduction with a fixed association order.
///
/// Each chunk `items[c*grain .. (c+1)*grain]` is folded to a partial by
/// `map`; partials are then combined pairwise in a balanced tree, level
/// by level, in ascending chunk order. The tree shape is a pure function
/// of the chunk count, so floating-point accumulation order — and hence
/// every result bit — is independent of the thread count.
pub fn par_reduce<T, U, M, C>(items: &[T], grain: usize, identity: U, map: M, combine: C) -> U
where
    T: Sync,
    U: Send,
    M: Fn(&[T]) -> U + Sync,
    C: Fn(U, U) -> U,
{
    let grain = grain.max(1);
    let n_chunks = chunk_count(items.len(), grain);
    let mut level: Vec<U> = par_tabulate(n_chunks, 1, |c| {
        let lo = c * grain;
        let hi = (lo + grain).min(items.len());
        map(&items[lo..hi])
    });
    while level.len() > 1 {
        let mut next_level = Vec::with_capacity(level.len().div_ceil(2));
        let mut it = level.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next_level.push(combine(a, b)),
                None => next_level.push(a),
            }
        }
        level = next_level;
    }
    level.into_iter().next().unwrap_or(identity)
}

/// One empty job handoff through the persistent pool — what every
/// dispatching `par_*` call pays on top of its real work. A no-op when
/// the resolved thread count is 1. Exists for the `par_scaling`
/// dispatch-overhead microbench; not part of the public contract.
#[doc(hidden)]
pub fn pool_handoff_probe() {
    let threads = engaged_threads(2);
    if threads <= 1 {
        return;
    }
    run_job(threads, &|| {});
}

/// The spawn-per-call handoff the pre-pool runtime paid: spawn and join
/// one scoped OS thread per engaged worker, doing nothing. Retained as
/// the dispatch-cost baseline for the `par_scaling` microbench; not part
/// of the public contract.
#[doc(hidden)]
pub fn spawn_handoff_probe() {
    let threads = engaged_threads(2);
    if threads <= 1 {
        return;
    }
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {});
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs `f` at each thread count in `sweep`, restoring the default
    /// afterwards, and asserts all results are identical.
    fn sweep_identical<U: PartialEq + std::fmt::Debug>(sweep: &[usize], f: impl Fn() -> U) {
        let mut results = Vec::new();
        for &t in sweep {
            set_threads(Some(t));
            results.push((t, f()));
        }
        set_threads(None);
        for pair in results.windows(2) {
            assert_eq!(
                pair[0].1, pair[1].1,
                "results diverged between {} and {} threads",
                pair[0].0, pair[1].0
            );
        }
    }

    #[test]
    fn par_map_preserves_order_at_any_thread_count() {
        let items: Vec<u64> = (0..1013).collect();
        sweep_identical(&[1, 2, 3, 7], || par_map(&items, 17, |&x| x * x + 1));
        set_threads(Some(4));
        let got = par_map(&items, 17, |&x| x * x + 1);
        set_threads(None);
        let want: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn par_tabulate_handles_empty_and_single() {
        assert_eq!(par_tabulate(0, 8, |i| i), Vec::<usize>::new());
        assert_eq!(par_tabulate(1, 8, |i| i + 5), vec![5]);
    }

    #[test]
    fn par_tabulate_with_owned_results_drops_cleanly() {
        // Heap-owning outputs exercise the direct-placement path: every
        // String must land in its slot and drop exactly once.
        set_threads(Some(3));
        let got = par_tabulate(257, 5, |i| format!("item-{i}"));
        set_threads(None);
        for (i, s) in got.iter().enumerate() {
            assert_eq!(s, &format!("item-{i}"));
        }
    }

    #[test]
    fn par_chunks_mut_layout_is_static() {
        sweep_identical(&[1, 2, 5], || {
            let mut data = vec![0usize; 997];
            par_chunks_mut(&mut data, 13, |c, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = c * 1000 + i;
                }
            });
            data
        });
    }

    #[test]
    fn par_reduce_float_sum_is_bit_stable_across_threads() {
        // Adversarial magnitudes: naive reassociation would change bits.
        let xs: Vec<f32> = (0..4096)
            .map(|i| ((i as f32) * 0.37).sin() * 10f32.powi((i % 13) as i32 - 6))
            .collect();
        sweep_identical(&[1, 2, 4, 8], || {
            par_reduce(
                &xs,
                64,
                0.0f32,
                |chunk| chunk.iter().fold(0.0f32, |a, &b| a + b),
                |a, b| a + b,
            )
            .to_bits()
        });
    }

    #[test]
    fn par_reduce_empty_returns_identity() {
        let xs: Vec<f32> = Vec::new();
        let got = par_reduce(&xs, 8, -1.5f32, |c| c.iter().sum(), |a, b| a + b);
        // One empty chunk maps to 0.0, so the identity is only used for
        // a zero-chunk input; chunk_count(0, 8) == 0.
        assert_eq!(got, -1.5);
    }

    #[test]
    fn nested_calls_run_inline_without_deadlock() {
        set_threads(Some(4));
        let outer: Vec<u32> = par_tabulate(8, 1, |i| {
            assert!(in_worker(), "job bodies always run with the worker flag set");
            let inner = par_tabulate(64, 4, |j| (i * 64 + j) as u32);
            inner.iter().sum()
        });
        set_threads(None);
        assert!(!in_worker(), "the flag clears once the job completes");
        let want: Vec<u32> = (0..8u32)
            .map(|i| (0..64u32).map(|j| i * 64 + j).sum())
            .collect();
        assert_eq!(outer, want);
    }

    #[test]
    fn thread_override_and_clamps() {
        set_threads(Some(0));
        assert!(num_threads() >= 1);
        set_threads(Some(100_000));
        assert_eq!(num_threads(), MAX_THREADS);
        set_threads(None);
        assert!(num_threads() >= 1);
        assert_eq!(chunk_count(10, 3), 4);
        assert_eq!(chunk_count(10, 0), 10);
        assert_eq!(chunk_count(0, 3), 0);
    }

    #[test]
    fn grain_for_is_pure_and_spans_the_gating_range() {
        // Tiny calls collapse to one chunk (inline).
        assert_eq!(grain_for(8, 10), 8);
        assert_eq!(grain_for(0, 1000), 1);
        // Heavy items get one item per chunk.
        assert_eq!(grain_for(64, DISPATCH_MIN_TOTAL_OPS), 1);
        // Medium items get enough per chunk to clear DISPATCH_MIN_OPS.
        let g = grain_for(100_000, 16);
        assert_eq!(g, DISPATCH_MIN_OPS.div_ceil(16));
        // Pure: the same inputs at any thread count give the same grain.
        sweep_identical(&[1, 2, 5], || grain_for(12_345, 77));
    }

    #[test]
    fn probes_are_safe_at_any_width() {
        for t in [1usize, 2, 3] {
            set_threads(Some(t));
            pool_handoff_probe();
            spawn_handoff_probe();
        }
        set_threads(None);
    }
}
