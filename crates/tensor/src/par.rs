//! Deterministic parallel runtime: a scoped worker pool with **static
//! chunk assignment**.
//!
//! Every entry point in this module guarantees *bit-identical* results at
//! any thread count, including 1. The guarantee is by construction:
//!
//! - **Chunk boundaries are a pure function of `(len, grain)`** — chunk
//!   `c` always covers `items[c*grain .. min((c+1)*grain, len)]`. Thread
//!   count and scheduling decide only *which worker* runs a chunk, never
//!   what the chunk contains.
//! - **Results are placed by chunk index**, not completion order:
//!   [`par_map`] writes chunk `c`'s outputs into positions
//!   `c*grain ..`, and [`par_chunks_mut`] hands each worker disjoint
//!   `&mut` slices whose layout is fixed by `(len, grain)`.
//! - **Reduction is tree-shaped with a fixed association order**:
//!   [`par_reduce`] combines per-chunk partials pairwise, level by level,
//!   in ascending chunk order — the combine tree depends only on the
//!   number of chunks, so float accumulation order never varies.
//!
//! The thread count comes from `RKVC_THREADS` (default: the machine's
//! available parallelism) and can be overridden in-process with
//! [`set_threads`] — safe to flip mid-run precisely because results are
//! thread-count-invariant. This module is the one sanctioned home for
//! `std::thread` in the workspace; the `rkvc-analyze` lint D004 rejects
//! thread use anywhere else.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Hard upper bound on the worker count; a backstop against absurd
/// `RKVC_THREADS` values, not a tuning knob.
pub const MAX_THREADS: usize = 256;

/// In-process override; 0 means "no override, consult the environment".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set while running inside a pool worker so nested `par_*` calls
    /// execute inline instead of oversubscribing the machine.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

struct WorkerGuard;

impl WorkerGuard {
    fn enter() -> WorkerGuard {
        IN_WORKER.with(|c| c.set(true));
        WorkerGuard
    }
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        IN_WORKER.with(|c| c.set(false));
    }
}

/// Whether the current thread is a pool worker (nested calls run inline).
fn in_worker() -> bool {
    IN_WORKER.with(|c| c.get())
}

/// The machine's available hardware parallelism (>= 1).
pub fn machine_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// `RKVC_THREADS` parsed once; invalid or missing values fall back to the
/// machine parallelism.
fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("RKVC_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(machine_parallelism)
    })
}

/// The number of worker threads `par_*` calls may use.
///
/// Resolution order: [`set_threads`] override, then `RKVC_THREADS`, then
/// the machine's available parallelism. Always in `1..=MAX_THREADS`.
/// Changing this value can never change any result — only wall-clock.
pub fn num_threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::Relaxed);
    let n = if o != 0 { o } else { env_threads() };
    n.clamp(1, MAX_THREADS)
}

/// Overrides the thread count in-process (`None` restores the
/// environment default). Primarily for tests sweeping thread counts;
/// safe to call at any time because results are thread-count-invariant.
pub fn set_threads(n: Option<usize>) {
    THREAD_OVERRIDE.store(n.unwrap_or(0).min(MAX_THREADS), Ordering::Relaxed);
}

/// Number of chunks `(len, grain)` splits into — the pure function that
/// fixes every chunk boundary.
pub fn chunk_count(len: usize, grain: usize) -> usize {
    len.div_ceil(grain.max(1))
}

/// How many workers to actually spawn for `n_chunks` chunks. Returns 1
/// (run inline) when parallelism cannot help or we are already inside a
/// pool worker.
fn engaged_threads(n_chunks: usize) -> usize {
    if in_worker() || n_chunks <= 1 {
        1
    } else {
        num_threads().min(n_chunks)
    }
}

/// Maps `f` over `0..len` in chunks of `grain` indices, in parallel.
///
/// Output order is always `f(0), f(1), .., f(len-1)` regardless of thread
/// count: workers claim chunk *indices* from a shared counter and results
/// are reassembled in chunk order.
pub fn par_tabulate<U, F>(len: usize, grain: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let grain = grain.max(1);
    let n_chunks = chunk_count(len, grain);
    let threads = engaged_threads(n_chunks);
    if threads <= 1 {
        return (0..len).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let fr = &f;
    let mut chunks: Vec<(usize, Vec<U>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let _guard = WorkerGuard::enter();
                    let mut done = Vec::new();
                    loop {
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        if c >= n_chunks {
                            break;
                        }
                        let lo = c * grain;
                        let hi = (lo + grain).min(len);
                        done.push((c, (lo..hi).map(fr).collect::<Vec<U>>()));
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(part) => part,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    chunks.sort_by_key(|&(c, _)| c);
    let mut out = Vec::with_capacity(len);
    for (_, part) in chunks {
        out.extend(part);
    }
    out
}

/// Maps `f` over a slice in chunks of `grain` items, preserving order.
///
/// Bit-identical to `items.iter().map(f).collect()` at every thread
/// count — parallelism only changes which worker evaluates each chunk.
pub fn par_map<T, U, F>(items: &[T], grain: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_tabulate(items.len(), grain, |i| f(&items[i]))
}

/// Splits `data` into chunks of `grain` elements and runs `f(chunk_index,
/// chunk)` on each, in parallel.
///
/// Chunks are assigned to workers round-robin by index (static
/// assignment); each chunk is a disjoint `&mut` slice whose bounds depend
/// only on `(data.len(), grain)`, so writes are race-free and
/// placement-deterministic by construction.
pub fn par_chunks_mut<T, F>(data: &mut [T], grain: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let grain = grain.max(1);
    if data.is_empty() {
        return;
    }
    let n_chunks = chunk_count(data.len(), grain);
    let threads = engaged_threads(n_chunks);
    if threads <= 1 {
        for (c, chunk) in data.chunks_mut(grain).enumerate() {
            f(c, chunk);
        }
        return;
    }
    let mut lanes: Vec<Vec<(usize, &mut [T])>> = (0..threads).map(|_| Vec::new()).collect();
    for (c, chunk) in data.chunks_mut(grain).enumerate() {
        lanes[c % threads].push((c, chunk));
    }
    let fr = &f;
    std::thread::scope(|s| {
        for lane in lanes {
            s.spawn(move || {
                let _guard = WorkerGuard::enter();
                for (c, chunk) in lane {
                    fr(c, chunk);
                }
            });
        }
    });
}

/// Parallel reduction with a fixed association order.
///
/// Each chunk `items[c*grain .. (c+1)*grain]` is folded to a partial by
/// `map`; partials are then combined pairwise in a balanced tree, level
/// by level, in ascending chunk order. The tree shape is a pure function
/// of the chunk count, so floating-point accumulation order — and hence
/// every result bit — is independent of the thread count.
pub fn par_reduce<T, U, M, C>(items: &[T], grain: usize, identity: U, map: M, combine: C) -> U
where
    T: Sync,
    U: Send,
    M: Fn(&[T]) -> U + Sync,
    C: Fn(U, U) -> U,
{
    let grain = grain.max(1);
    let n_chunks = chunk_count(items.len(), grain);
    let mut level: Vec<U> = par_tabulate(n_chunks, 1, |c| {
        let lo = c * grain;
        let hi = (lo + grain).min(items.len());
        map(&items[lo..hi])
    });
    while level.len() > 1 {
        let mut next_level = Vec::with_capacity(level.len().div_ceil(2));
        let mut it = level.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next_level.push(combine(a, b)),
                None => next_level.push(a),
            }
        }
        level = next_level;
    }
    level.into_iter().next().unwrap_or(identity)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs `f` at each thread count in `sweep`, restoring the default
    /// afterwards, and asserts all results are identical.
    fn sweep_identical<U: PartialEq + std::fmt::Debug>(sweep: &[usize], f: impl Fn() -> U) {
        let mut results = Vec::new();
        for &t in sweep {
            set_threads(Some(t));
            results.push((t, f()));
        }
        set_threads(None);
        for pair in results.windows(2) {
            assert_eq!(
                pair[0].1, pair[1].1,
                "results diverged between {} and {} threads",
                pair[0].0, pair[1].0
            );
        }
    }

    #[test]
    fn par_map_preserves_order_at_any_thread_count() {
        let items: Vec<u64> = (0..1013).collect();
        sweep_identical(&[1, 2, 3, 7], || {
            par_map(&items, 17, |&x| x * x + 1)
        });
        set_threads(Some(4));
        let got = par_map(&items, 17, |&x| x * x + 1);
        set_threads(None);
        let want: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn par_tabulate_handles_empty_and_single() {
        assert_eq!(par_tabulate(0, 8, |i| i), Vec::<usize>::new());
        assert_eq!(par_tabulate(1, 8, |i| i + 5), vec![5]);
    }

    #[test]
    fn par_chunks_mut_layout_is_static() {
        sweep_identical(&[1, 2, 5], || {
            let mut data = vec![0usize; 997];
            par_chunks_mut(&mut data, 13, |c, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = c * 1000 + i;
                }
            });
            data
        });
    }

    #[test]
    fn par_reduce_float_sum_is_bit_stable_across_threads() {
        // Adversarial magnitudes: naive reassociation would change bits.
        let xs: Vec<f32> = (0..4096)
            .map(|i| ((i as f32) * 0.37).sin() * 10f32.powi((i % 13) as i32 - 6))
            .collect();
        sweep_identical(&[1, 2, 4, 8], || {
            par_reduce(
                &xs,
                64,
                0.0f32,
                |chunk| chunk.iter().fold(0.0f32, |a, &b| a + b),
                |a, b| a + b,
            )
            .to_bits()
        });
    }

    #[test]
    fn par_reduce_empty_returns_identity() {
        let xs: Vec<f32> = Vec::new();
        let got = par_reduce(&xs, 8, -1.5f32, |c| c.iter().sum(), |a, b| a + b);
        // One empty chunk maps to 0.0, so the identity is only used for
        // a zero-chunk input; chunk_count(0, 8) == 0.
        assert_eq!(got, -1.5);
    }

    #[test]
    fn nested_calls_run_inline_without_deadlock() {
        set_threads(Some(4));
        let outer: Vec<u32> = par_tabulate(8, 1, |i| {
            let inner = par_tabulate(64, 4, |j| (i * 64 + j) as u32);
            inner.iter().sum()
        });
        set_threads(None);
        let want: Vec<u32> = (0..8u32)
            .map(|i| (0..64u32).map(|j| i * 64 + j).sum())
            .collect();
        assert_eq!(outer, want);
    }

    #[test]
    fn thread_override_and_clamps() {
        set_threads(Some(0));
        assert!(num_threads() >= 1);
        set_threads(Some(100_000));
        assert_eq!(num_threads(), MAX_THREADS);
        set_threads(None);
        assert!(num_threads() >= 1);
        assert_eq!(chunk_count(10, 3), 4);
        assert_eq!(chunk_count(10, 0), 10);
        assert_eq!(chunk_count(0, 3), 0);
    }
}
