//! Dense f32 tensor math substrate for the `rethink-kv-compression` workspace.
//!
//! This crate provides the minimal linear-algebra toolkit the reproduction
//! needs: a row-major [`Matrix`] with GEMM/softmax/norm kernels, IEEE-754
//! binary16 round-tripping (to faithfully simulate FP16 KV-cache storage),
//! and a power-iteration low-rank factorizer (used by the GEAR error
//! corrector).
//!
//! # Examples
//!
//! ```
//! use rkvc_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.get(1, 0), 3.0);
//! ```

pub mod check;
pub mod det;
mod half;
pub mod json;
mod lowrank;
mod matrix;
mod ops;
pub mod par;
mod rng;

pub use half::{f16_bits_to_f32, f32_to_f16_bits, round_to_f16, round_slice_to_f16};
pub use lowrank::{low_rank_approximate, LowRankFactors};
pub use matrix::Matrix;
pub use ops::{
    argmax, rms_norm, rope_rotate, seq_sum_f32, seq_sum_f64, silu, softmax_in_place, softmax_into,
    softmax_row, top_k,
};
pub use rng::{seeded_rng, xavier_matrix, SeededRng};

/// Error raised by tensor operations on shape mismatches or invalid
/// arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Left operand shape `(rows, cols)`.
        lhs: (usize, usize),
        /// Right operand shape `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// An argument was out of the valid domain (e.g. rank 0 low-rank
    /// factorization).
    InvalidArgument(&'static str),
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs {}x{}, rhs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}
