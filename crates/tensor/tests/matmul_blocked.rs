//! Matmul kernels (register-tiled microkernel and the retained blocked
//! baselines) vs the naive oracles: exact (bitwise) equality over
//! adversarial shapes and thread counts.

use rkvc_tensor::{par, seeded_rng, Matrix};

fn random_matrix(rng: &mut rkvc_tensor::SeededRng, rows: usize, cols: usize) -> Matrix {
    let data: Vec<f32> = (0..rows * cols)
        .map(|_| {
            // Mixed magnitudes plus exact zeros so the kernels' zero-skip
            // paths get exercised; any reassociation would flip bits.
            if rng.gen_bool(0.125) {
                0.0
            } else {
                rng.gen_range(-4.0f32..4.0) * 10f32.powi(rng.gen_range(-3i32..4))
            }
        })
        .collect();
    Matrix::from_vec(rows, cols, data)
}

fn assert_bit_identical(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape");
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: value bits diverged");
    }
}

rkvc_tensor::det_cases! {
    fn micro_matmul_matches_naive_oracle(rng, cases = 96) {
        let rows = rng.gen_range(0usize..33);
        let k = rng.gen_range(0usize..70);
        let cols = rng.gen_range(0usize..33);
        let a = random_matrix(rng, rows, k);
        let b = random_matrix(rng, k, cols);
        let oracle = a.matmul_naive(&b);
        assert_bit_identical(&a.matmul(&b), &oracle, "matmul micro");
        assert_bit_identical(&a.matmul_blocked(&b), &oracle, "matmul blocked");
    }

    fn micro_matmul_transposed_matches_naive_oracle(rng, cases = 96) {
        let rows = rng.gen_range(0usize..33);
        let k = rng.gen_range(0usize..70);
        let b_rows = rng.gen_range(0usize..33);
        let a = random_matrix(rng, rows, k);
        let b = random_matrix(rng, b_rows, k);
        let oracle = a.matmul_transposed_naive(&b);
        assert_bit_identical(&a.matmul_transposed(&b), &oracle, "matmul_transposed micro");
        assert_bit_identical(
            &a.matmul_transposed_blocked(&b),
            &oracle,
            "matmul_transposed blocked",
        );
    }
}

/// Odd fixed shapes the blocked kernel must not mis-tile: 1x1, empty
/// inner dimension, tall/skinny, and sizes that are not a multiple of the
/// row block or k-panel.
#[test]
fn edge_shapes_match_oracle_exactly() {
    let mut rng = seeded_rng(0xED6E_0001);
    let shapes: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (1, 0, 1),
        (0, 5, 3),
        (3, 5, 0),
        (33, 1, 7),
        (1, 129, 1),
        (5, 67, 9),
        (8, 64, 8),
        (9, 65, 17),
        (2, 300, 2),
    ];
    for &(rows, k, cols) in shapes {
        let a = random_matrix(&mut rng, rows, k);
        let b = random_matrix(&mut rng, k, cols);
        assert_bit_identical(&a.matmul(&b), &a.matmul_naive(&b), "edge matmul");
        assert_bit_identical(&a.matmul_blocked(&b), &a.matmul_naive(&b), "edge matmul blocked");
        let bt = random_matrix(&mut rng, cols, k);
        assert_bit_identical(
            &a.matmul_transposed(&bt),
            &a.matmul_transposed_naive(&bt),
            "edge matmul_transposed",
        );
        assert_bit_identical(
            &a.matmul_transposed_blocked(&bt),
            &a.matmul_transposed_naive(&bt),
            "edge matmul_transposed blocked",
        );
    }
}

/// A product large enough to engage the worker pool must stay bitwise
/// stable across thread counts (and equal to the naive oracle).
#[test]
fn large_matmul_is_thread_count_invariant() {
    let mut rng = seeded_rng(0xED6E_0002);
    let a = random_matrix(&mut rng, 96, 130);
    let b = random_matrix(&mut rng, 130, 96);
    let oracle = a.matmul_naive(&b);
    let oracle_t = a.matmul_transposed_naive(&b.transposed());
    for threads in [1usize, 2, 3, 4] {
        par::set_threads(Some(threads));
        assert_bit_identical(&a.matmul(&b), &oracle, "matmul sweep");
        assert_bit_identical(&a.matmul_blocked(&b), &oracle, "matmul blocked sweep");
        assert_bit_identical(
            &a.matmul_transposed(&b.transposed()),
            &oracle_t,
            "matmul_transposed sweep",
        );
        assert_bit_identical(
            &a.matmul_transposed_blocked(&b.transposed()),
            &oracle_t,
            "matmul_transposed blocked sweep",
        );
    }
    par::set_threads(None);
}

#[test]
fn push_rows_matches_per_row_pushes() {
    let mut rng = seeded_rng(0xED6E_0003);
    let a = random_matrix(&mut rng, 4, 6);
    let b = random_matrix(&mut rng, 3, 6);
    let mut bulk = Matrix::zeros(0, 0);
    bulk.push_rows(&a);
    bulk.push_rows(&b);
    let mut single = Matrix::zeros(0, 0);
    for r in 0..a.rows() {
        single.push_row(a.row(r));
    }
    for r in 0..b.rows() {
        single.push_row(b.row(r));
    }
    assert_eq!(bulk, single);
    assert_eq!(bulk.shape(), (7, 6));
}
