//! Lifecycle tests for the persistent worker pool behind
//! `rkvc_tensor::par`: mid-run reconfiguration, nested fan-outs, panic
//! survival, and inline-vs-pooled bit identity over random shapes.
//!
//! These run as an integration test (their own process) so pool state
//! built up by unit tests cannot mask a lifecycle bug.

use rkvc_tensor::det_cases;
use rkvc_tensor::par::{
    chunk_count, in_worker, par_chunks_mut, par_reduce, par_tabulate, set_threads,
};

/// A workload with owned results and float accumulation, so both the
/// direct-placement path and drop behavior get exercised.
fn tabulate_workload(len: usize, grain: usize) -> Vec<(usize, u64)> {
    par_tabulate(len, grain, |i| {
        let mut h = i as u64 ^ 0x9e37_79b9_7f4a_7c15;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        (i, h ^ (h >> 31))
    })
}

#[test]
fn set_threads_reconfigures_mid_run() {
    // Warm the pool wide, shrink it, grow it again — interleaving real
    // jobs at every width. Every configuration must produce identical
    // results; shrinking must not strand a job and growing must not lose
    // parked workers.
    let want = tabulate_workload(1003, 7);
    for &width in &[4usize, 1, 2, 6, 3, 1, 5] {
        set_threads(Some(width));
        assert_eq!(tabulate_workload(1003, 7), want, "width {width} diverged");
        let mut buf = vec![0u32; 517];
        par_chunks_mut(&mut buf, 11, |c, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = (c * 100 + i) as u32;
            }
        });
        assert_eq!(buf[0], 0);
        assert_eq!(buf[516], (chunk_count(517, 11) - 1) as u32 * 100 + 516 % 11);
    }
    set_threads(None);
}

#[test]
fn nested_fanout_runs_inline_inside_workers() {
    set_threads(Some(4));
    assert!(!in_worker());
    let sums: Vec<u64> = par_tabulate(6, 1, |i| {
        // Inside a job — on a pool worker or the participating caller —
        // the worker flag is set and nested calls must run inline
        // without touching the pool (which would deadlock: the pool's
        // submit lock is held by our own dispatcher).
        assert!(in_worker());
        let inner = par_tabulate(200, 3, |j| (i * 1000 + j) as u64);
        let nested_reduce = par_reduce(&inner, 16, 0u64, |c| c.iter().sum(), |a, b| a + b);
        assert!(in_worker());
        nested_reduce
    });
    set_threads(None);
    assert!(!in_worker());
    let want: Vec<u64> = (0..6u64)
        .map(|i| (0..200u64).map(|j| i * 1000 + j).sum())
        .collect();
    assert_eq!(sums, want);
}

#[test]
fn pool_survives_a_panicking_job() {
    set_threads(Some(4));
    for round in 0..3 {
        let got = std::panic::catch_unwind(|| {
            par_tabulate(64, 1, |i| {
                if i == 37 {
                    panic!("planted failure, round {round}");
                }
                i * 2
            })
        });
        assert!(got.is_err(), "the planted panic must propagate to the caller");
        // The pool must come back clean: no deadlock, no poisoned state,
        // no stuck workers — the very next call parallelizes normally.
        let after = tabulate_workload(515, 4);
        set_threads(Some(1));
        let inline = tabulate_workload(515, 4);
        set_threads(Some(4));
        assert_eq!(after, inline, "post-panic results diverged (round {round})");
    }
    set_threads(None);
}

#[test]
fn panicking_chunks_mut_job_propagates_and_recovers() {
    set_threads(Some(3));
    let mut buf = vec![0u8; 96];
    let got = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        par_chunks_mut(&mut buf, 8, |c, _chunk| {
            if c == 5 {
                panic!("planted chunk failure");
            }
        });
    }));
    assert!(got.is_err());
    // The buffer is still usable and the pool still dispatches.
    par_chunks_mut(&mut buf, 8, |c, chunk| chunk.fill(c as u8));
    for (i, &v) in buf.iter().enumerate() {
        assert_eq!(v as usize, i / 8);
    }
    set_threads(None);
}

det_cases! {
    fn inline_and_pooled_tabulate_are_bit_identical(rng, cases = 48) {
        let len = rng.gen_range(0..600usize);
        let grain = rng.gen_range(1..40usize);
        set_threads(Some(1));
        let inline: Vec<u64> = par_tabulate(len, grain, |i| {
            let x = (i as f32 * 0.173).sin() * 1.0e3;
            (x as i64 as u64).wrapping_mul(i as u64 | 1)
        });
        set_threads(Some(rng.gen_range(2..7usize)));
        let pooled: Vec<u64> = par_tabulate(len, grain, |i| {
            let x = (i as f32 * 0.173).sin() * 1.0e3;
            (x as i64 as u64).wrapping_mul(i as u64 | 1)
        });
        set_threads(None);
        assert_eq!(inline, pooled, "len {len} grain {grain}");
    }

    fn inline_and_pooled_reduce_are_bit_identical(rng, cases = 48) {
        let len = rng.gen_range(0..800usize);
        let grain = rng.gen_range(1..50usize);
        let xs: Vec<f32> = (0..len)
            .map(|i| {
                let m = rng.gen_range(-6i32..7);
                ((i as f32) * 0.61).cos() * 10f32.powi(m)
            })
            .collect();
        let sum = |chunk: &[f32]| chunk.iter().fold(0.0f32, |a, &b| a + b);
        set_threads(Some(1));
        let inline = par_reduce(&xs, grain, 0.0f32, sum, |a, b| a + b).to_bits();
        set_threads(Some(rng.gen_range(2..7usize)));
        let pooled = par_reduce(&xs, grain, 0.0f32, sum, |a, b| a + b).to_bits();
        set_threads(None);
        assert_eq!(inline, pooled, "len {len} grain {grain}");
    }

    fn inline_and_pooled_chunks_mut_are_bit_identical(rng, cases = 48) {
        let len = rng.gen_range(1..700usize);
        let grain = rng.gen_range(1..45usize);
        let run = |threads: usize| {
            set_threads(Some(threads));
            let mut buf = vec![0.0f32; len];
            par_chunks_mut(&mut buf, grain, |c, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = ((c * 31 + i) as f32 * 0.017).exp();
                }
            });
            buf.iter().map(|v| v.to_bits()).collect::<Vec<u32>>()
        };
        let inline = run(1);
        let pooled = run(rng.gen_range(2..7usize));
        set_threads(None);
        assert_eq!(inline, pooled, "len {len} grain {grain}");
    }
}
